//! Table II: gratuitous recovery and false-positive rate in the absence of
//! attacks, across CI, Savior, SRR and PID-Piper.

use crate::harness::{self, Scale};
use pidpiper_missions::{Defense, MissionPlan};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Per-technique tallies for the attack-free runs.
#[derive(Debug, Default, Clone)]
pub struct FprRow {
    /// Technique name.
    pub name: String,
    /// Missions run.
    pub total: usize,
    /// Missions in which recovery activated at least once.
    pub recovery_activated: usize,
    /// Of those, missions that still succeeded.
    pub recovered_ok: usize,
    /// Missions that failed (the paper's FPR counts only failures).
    pub failed: usize,
}

impl FprRow {
    /// False-positive rate in percent (failed / total).
    pub fn fpr(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.failed as f64 / self.total as f64
        }
    }
}

/// Runs attack-free missions under one technique. Mission `i` flies
/// `plans[i]` with seed `seed_base + i` under a fresh clone of `defense`,
/// fanned out over the `PIDPIPER_JOBS` pool (the runner resets defense
/// state before every mission, so a clone of the fitted template is
/// equivalent to the old serial reuse of one instance).
pub fn run_clean_missions<D>(
    rv: RvId,
    defense: &D,
    plans: &[MissionPlan],
    seed_base: u64,
) -> FprRow
where
    D: Defense + Clone + Send + Sync + 'static,
{
    let mut row = FprRow {
        name: defense.name().to_string(),
        ..Default::default()
    };
    for result in harness::run_cell(rv, defense, plans, seed_base, |_| Vec::new()) {
        row.total += 1;
        if result.recovery_activations > 0 {
            row.recovery_activated += 1;
            if result.outcome.is_success() {
                row.recovered_ok += 1;
            }
        }
        if !result.outcome.is_success() {
            row.failed += 1;
        }
    }
    row
}

/// Runs the Table II experiment on the ArduCopter profile.
pub fn run(scale: Scale) -> String {
    let rv = RvId::ArduCopter;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let ci = harness::fit_ci(rv, &traces);
    let srr = harness::fit_srr(rv, &traces);
    let savior = harness::fit_savior(rv, &traces);

    // Evaluation missions: unseen seeds/geometry (not the training set).
    let n = scale.missions();
    let plans: Vec<MissionPlan> = MissionPlan::table1_missions(rv, 23, scale.geometry())
        .into_iter()
        .take(n)
        .collect();

    let rows = [
        run_clean_missions(rv, &ci, &plans, 4000),
        run_clean_missions(rv, &savior, &plans, 4000),
        run_clean_missions(rv, &srr, &plans, 4000),
        run_clean_missions(rv, &pidpiper, &plans, 4000),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II: gratuitous recovery and FPR in the absence of attacks ({n} missions each)"
    );
    let widths = [26, 10, 10, 10, 10, 8];
    let _ = writeln!(
        out,
        "{}",
        harness::row(
            &[
                "Analysis".into(),
                "CI".into(),
                "Savior".into(),
                "SRR".into(),
                "PID-Piper".into(),
                "".into()
            ],
            &widths
        )
    );
    let line = |label: &str, f: &dyn Fn(&FprRow) -> String| -> String {
        harness::row(
            &[
                label.into(),
                f(&rows[0]),
                f(&rows[1]),
                f(&rows[2]),
                f(&rows[3]),
                "".into(),
            ],
            &widths,
        )
    };
    let _ = writeln!(out, "{}", line("Total missions", &|r| r.total.to_string()));
    let _ = writeln!(
        out,
        "{}",
        line("Recovery activated", &|r| r.recovery_activated.to_string())
    );
    let _ = writeln!(
        out,
        "{}",
        line("Mission successful", &|r| r.recovered_ok.to_string())
    );
    let _ = writeln!(out, "{}", line("Mission failed", &|r| r.failed.to_string()));
    let _ = writeln!(out, "{}", line("FPR %", &|r| format!("{:.1}", r.fpr())));
    let _ = writeln!(
        out,
        "\nPaper (Table II): FPR 23.3 % (CI), 13.3 % (Savior), 10 % (SRR), 0 % (PID-Piper)."
    );
    harness::emit_report("table2_false_positives", &out);
    out
}
