//! Shared experiment infrastructure: trace collection, train-or-load model
//! caching, technique fitting and result output.

use pidpiper_control::PositionGains;
use pidpiper_core::{artifact, PidPiper, Trainer, TrainerConfig};
use pidpiper_baselines::ci::CiConfig;
use pidpiper_baselines::savior::SaviorConfig;
use pidpiper_baselines::srr::SrrConfig;
use pidpiper_baselines::{CiDefense, SaviorDefense, SrrDefense};
use pidpiper_missions::{MissionPlan, MissionRunner, MissionSpec, NoDefense, RunnerConfig, Trace};
use pidpiper_sim::{RvId, VehicleKind, VehicleProfile};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Experiment scale, selected by `PIDPIPER_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced mission counts/distances for a fast full-suite run.
    Quick,
    /// Paper-scale mission counts and distances.
    Full,
}

impl Scale {
    /// Reads `PIDPIPER_SCALE` (default quick).
    pub fn from_env() -> Scale {
        match std::env::var("PIDPIPER_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Missions per experiment cell (paper: 30).
    pub fn missions(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 30,
        }
    }

    /// Geometry scale applied to mission distances.
    pub fn geometry(self) -> f64 {
        match self {
            Scale::Quick => 0.5,
            Scale::Full => 1.0,
        }
    }

    /// Stealthy-sweep mission distances (paper: 50 m to 5000 m).
    pub fn stealthy_distances(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![50.0, 200.0, 500.0, 1000.0],
            Scale::Full => vec![50.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0],
        }
    }
}

/// The standard seed used for trace collection (offset per mission).
pub const TRACE_SEED: u64 = 500;

/// Collects the Table-I mission-profile trace set for one RV (attack-free,
/// undefended). Used for training, calibration and offline accuracy
/// studies.
pub fn collect_traces(rv: RvId, scale: Scale) -> Vec<Trace> {
    let plans = MissionPlan::table1_missions(rv, 7, scale.geometry());
    // Calm conditions throughout: mixing windy missions into the training
    // set was tried and measurably degraded recovery quality (the model
    // learns to trim against unobservable wind and carries that bias into
    // clean predictions) — see EXPERIMENTS.md's divergence notes on the
    // Section VI-B wind MAE row.
    //
    // Mission i's seed is TRACE_SEED + i and the batch runs on the
    // PIDPIPER_JOBS pool; results come back in plan order, so the trace
    // set is bit-identical to the old serial loop at any worker count.
    let specs: Vec<MissionSpec> = plans
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            MissionSpec::clean(RunnerConfig::for_rv(rv).with_seed(TRACE_SEED + i as u64), p)
        })
        .collect();
    MissionRunner::par_run_missions(&specs, |_| Box::new(NoDefense::new()))
        .into_iter()
        .map(|r| r.trace)
        .collect()
}

/// The workspace root (bench executables run with the package directory
/// as their cwd, so relative paths would land under `crates/bench/`).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

fn cache_dir() -> PathBuf {
    let dir = workspace_root().join("target/pidpiper-cache");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Output directory for experiment artifacts.
pub fn experiments_dir() -> PathBuf {
    let dir = workspace_root().join("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// The shipped-model directory (`models/` at the workspace root).
pub fn models_dir() -> PathBuf {
    workspace_root().join("models")
}

/// Writes an experiment report both to stdout and to
/// `target/experiments/<name>.txt`.
pub fn emit_report(name: &str, body: &str) {
    println!("\n===== {name} =====\n{body}");
    let path = experiments_dir().join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: failed to write {}: {e}", path.display());
    }
}

/// Cache version — bump to invalidate cached models after pipeline changes.
const CACHE_VERSION: &str = "v8";

/// In-process model cache: one slot per `(rv, scale)` key. The per-key
/// `OnceLock` guarantees that when parallel experiment cells ask for the
/// same vehicle's model simultaneously, exactly one thread trains (or
/// loads) it and the rest block on the slot instead of duplicating the
/// work or racing on the on-disk cache file.
type ModelSlot = Arc<OnceLock<PidPiper>>;

// A BTreeMap (not HashMap) keyed by model name: any future iteration over
// the cached slots is deterministic by construction, per the workspace
// determinism policy (analyzer rule DT03).
fn model_cache() -> &'static Mutex<BTreeMap<String, ModelSlot>> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, ModelSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Trains (or loads from cache) the deployed PID-Piper for one RV.
///
/// Thread-safe: concurrent calls for the same `(rv, scale)` key share one
/// training run via a mutex-protected `OnceLock` table; distinct keys
/// train independently. The trained model is also mirrored to the on-disk
/// cache (`target/pidpiper-cache/`) for later processes.
pub fn trained_pidpiper(rv: RvId, scale: Scale, traces: &[Trace]) -> PidPiper {
    let key = format!(
        "{}-{}-{:?}.pidpiper",
        CACHE_VERSION,
        rv.name().replace(' ', "_"),
        scale
    );
    let slot: ModelSlot = {
        let mut map = model_cache().lock().expect("model cache poisoned");
        map.entry(key.clone()).or_default().clone()
    };
    slot.get_or_init(|| {
        let path = cache_dir().join(&key);
        for candidate in [path.clone(), models_dir().join(&key)] {
            // Refuse-and-retrain: any integrity or format failure falls
            // through to a fresh training run — a corrupt artifact is
            // never parsed around or partially loaded.
            match artifact::load_deployment(&candidate) {
                Ok((pp, integrity)) => {
                    eprintln!(
                        "[harness] loaded PID-Piper for {rv} from {} ({integrity:?})",
                        candidate.display()
                    );
                    return pp;
                }
                // A missing cache file is the normal first-run case; only
                // report the interesting rejections.
                Err(artifact::ArtifactError::Io { .. }) => {}
                Err(err) => eprintln!(
                    "[harness] model at {} rejected ({err}); retraining",
                    candidate.display()
                ),
            }
        }
        let t0 = Instant::now();
        let trainer = Trainer::new(TrainerConfig::default());
        let trained = trainer.train(traces, rv.kind() == VehicleKind::Rover);
        eprintln!(
            "[harness] trained PID-Piper for {rv} in {:.0}s ({}); thresholds {:?}",
            t0.elapsed().as_secs_f64(),
            trained.report,
            trained.thresholds
        );
        if let Err(err) = artifact::save_deployment(&path, &trained.pidpiper) {
            eprintln!("[harness] could not cache model at {}: {err}", path.display());
        }
        trained.pidpiper
    })
    .clone()
}

/// Runs a batch of mission specs against per-mission clones of one fitted
/// defense, on the `PIDPIPER_JOBS` worker pool. Results are in spec order.
pub fn par_with_defense<D>(
    specs: &[MissionSpec],
    defense: &D,
) -> Vec<pidpiper_missions::MissionResult>
where
    D: pidpiper_missions::Defense + Clone + Send + Sync + 'static,
{
    MissionRunner::par_run_missions(specs, |_| Box::new(defense.clone()))
}

/// Runs one experiment cell: `plans[i]` flown with `attacks_for(i)` under
/// a fresh clone of `defense`, seeded `seed_base + i` — the exact seed
/// derivation of the old serial loops, so any worker count reproduces the
/// serial results.
pub fn run_cell<D>(
    rv: RvId,
    defense: &D,
    plans: &[MissionPlan],
    seed_base: u64,
    attacks_for: impl Fn(usize) -> Vec<pidpiper_missions::MissionAttack>,
) -> Vec<pidpiper_missions::MissionResult>
where
    D: pidpiper_missions::Defense + Clone + Send + Sync + 'static,
{
    let specs: Vec<MissionSpec> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            MissionSpec::clean(
                RunnerConfig::for_rv(rv).with_seed(seed_base + i as u64),
                plan.clone(),
            )
            .with_attacks(attacks_for(i))
        })
        .collect();
    par_with_defense(&specs, defense)
}

/// The position-controller gains matching an RV's airframe (used by the
/// baselines' shadow controllers).
pub fn gains_for(rv: RvId) -> PositionGains {
    let profile = VehicleProfile::for_rv(rv);
    let p = profile
        .quad_params()
        .expect("baselines are evaluated on quadcopters");
    PositionGains::for_quad(p.mass, 4.0 * p.max_motor_thrust())
}

/// Fits the CI baseline for an RV.
pub fn fit_ci(rv: RvId, traces: &[Trace]) -> CiDefense {
    let _ = rv;
    CiDefense::fit(traces, CiConfig::default()).expect("CI system identification")
}

/// Fits the SRR baseline for an RV.
pub fn fit_srr(rv: RvId, traces: &[Trace]) -> SrrDefense {
    SrrDefense::fit(traces, SrrConfig::default(), gains_for(rv)).expect("SRR fit")
}

/// Fits the Savior baseline for an RV.
pub fn fit_savior(rv: RvId, traces: &[Trace]) -> SaviorDefense {
    let params = VehicleProfile::for_rv(rv)
        .quad_params()
        .expect("Savior is evaluated on quadcopters");
    SaviorDefense::fit(traces, &params, gains_for(rv), SaviorConfig::default())
        .expect("Savior fit")
}

/// Formats a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_ordered() {
        assert!(Scale::Quick.missions() < Scale::Full.missions());
        assert!(Scale::Quick.geometry() <= Scale::Full.geometry());
        assert!(
            Scale::Quick.stealthy_distances().len() < Scale::Full.stealthy_distances().len()
        );
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   | bb  ");
    }
}
