//! Fault matrix: mission outcomes for every defense under each benign
//! [`FaultKind`] — the graceful-degradation companion to Table III's
//! attack evaluation.
//!
//! Attacks are adversarial sensor biases; faults are the *benign* failure
//! modes a deployed defense must also survive (GPS dropouts, wedged
//! peripherals, NaN bursts, actuator derating, control-task overruns).
//! The matrix reports, per fault × defense cell, the survival rate
//! (missions ending without a crash or stall), the crash/stall count and
//! the count of missions ending in the latched `Degraded` fail-safe —
//! PID-Piper's supervisor is the only technique with an explicit degraded
//! mode, so that column doubles as a check that the watchdog and FFC
//! health monitor actually latch under sustained faults instead of
//! crashing or flying on a poisoned model.

use crate::harness::{self, Scale};
use pidpiper_faults::{Fault, FaultKind, FaultSchedule, SensorChannel};
use pidpiper_math::Vec3;
use pidpiper_missions::{
    Defense, MissionBudget, MissionError, MissionPlan, MissionRunner, MissionSpec, NoDefense,
    ResiliencePolicy, RunnerConfig,
};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Seed base for the fault-matrix cells (each fault row gets its own
/// century so adding a row never reshuffles another row's missions).
const FAULT_SEED_BASE: u64 = 9000;

/// One fault scenario of the matrix: a display label plus the injected
/// fault's kind and activation schedule.
pub struct FaultCase {
    /// Row label in the report.
    pub label: &'static str,
    /// The injected fault mode.
    pub kind: FaultKind,
    /// When the fault is active.
    pub schedule: FaultSchedule,
}

/// The fault scenarios swept by the matrix — one per [`FaultKind`] variant,
/// with mid-mission activation so each mission has a clean prefix for the
/// defenses' monitors to settle on.
pub fn fault_cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            label: "gps dropout 4s",
            kind: FaultKind::GpsDropout,
            schedule: FaultSchedule::Windows(vec![(8.0, 12.0)]),
        },
        FaultCase {
            label: "frozen baro 10s",
            kind: FaultKind::FrozenSensor(SensorChannel::Baro),
            schedule: FaultSchedule::Windows(vec![(8.0, 18.0)]),
        },
        FaultCase {
            label: "nan bursts 0.5s/4s",
            kind: FaultKind::NanBurst,
            schedule: FaultSchedule::Intermittent {
                start: 8.0,
                on: 0.5,
                off: 4.0,
            },
        },
        FaultCase {
            label: "gyro stuck 2s",
            kind: FaultKind::GyroStuckAt(Vec3::new(0.02, -0.01, 0.0)),
            schedule: FaultSchedule::Windows(vec![(8.0, 10.0)]),
        },
        FaultCase {
            label: "actuators at 85%",
            kind: FaultKind::ActuatorSaturation { effort: 0.85 },
            schedule: FaultSchedule::Continuous { start: 8.0 },
        },
        FaultCase {
            label: "ctrl skip 1-in-3",
            kind: FaultKind::ControlSkip { every: 3 },
            schedule: FaultSchedule::Windows(vec![(8.0, 14.0)]),
        },
        FaultCase {
            label: "ctrl jitter p=0.2",
            kind: FaultKind::ControlJitter {
                skip_probability: 0.2,
            },
            schedule: FaultSchedule::Continuous { start: 8.0 },
        },
    ]
}

/// Outcome tallies for one `fault x defense` cell.
#[derive(Debug, Default, Clone)]
pub struct FaultCell {
    /// Missions run.
    pub total: usize,
    /// Missions ending without a crash or stall (success or miss).
    pub survived: usize,
    /// Missions reaching the destination within the 10 m radius.
    pub success: usize,
    /// Crashes and stalls.
    pub crash_or_stall: usize,
    /// Missions whose defense ended in the latched `Degraded` state.
    pub degraded: usize,
    /// Total health-state transitions across the cell's missions.
    pub health_transitions: usize,
    /// Largest recovery-steps count of any mission (watchdog-bound check).
    pub max_recovery_steps: usize,
}

impl FaultCell {
    /// Survival rate in percent.
    pub fn survival_rate(&self) -> f64 {
        100.0 * self.survived as f64 / self.total.max(1) as f64
    }
}

/// Runs one matrix cell: the mission set flown under `defense` with
/// `case`'s fault injected into every mission (mission `i` gets seed
/// `seed_base + i` and fault seed `seed_base + 31 * i`), fanned out over
/// the `PIDPIPER_JOBS` pool.
pub fn run_fault_cell<D>(
    rv: RvId,
    defense: &D,
    plans: &[MissionPlan],
    case: &FaultCase,
    seed_base: u64,
) -> FaultCell
where
    D: Defense + Clone + Send + Sync + 'static,
{
    let specs: Vec<MissionSpec> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            MissionSpec::clean(
                RunnerConfig::for_rv(rv)
                    .with_seed(seed_base + i as u64)
                    .with_faults(vec![Fault::new(case.kind.clone(), case.schedule.clone())])
                    .with_fault_seed(seed_base + 31 * i as u64),
                plan.clone(),
            )
        })
        .collect();
    let mut cell = FaultCell::default();
    for result in harness::par_with_defense(&specs, defense) {
        cell.total += 1;
        if result.outcome.is_success() {
            cell.success += 1;
        }
        if result.outcome.is_crash_or_stall() {
            cell.crash_or_stall += 1;
        } else {
            cell.survived += 1;
        }
        if result.final_health.is_degraded() {
            cell.degraded += 1;
        }
        cell.health_transitions += result.health_transitions;
        cell.max_recovery_steps = cell.max_recovery_steps.max(result.recovery_steps);
    }
    cell
}

/// Runs the fault matrix on the ArduCopter profile: every fault case
/// against CI, Savior, SRR and PID-Piper.
pub fn run(scale: Scale) -> String {
    let rv = RvId::ArduCopter;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let ci = harness::fit_ci(rv, &traces);
    let srr = harness::fit_srr(rv, &traces);
    let savior = harness::fit_savior(rv, &traces);

    // Half of Table III's mission count per cell: the matrix has 7x as
    // many cells, and fault outcomes saturate quickly (a fault either is
    // or is not survivable under a given defense).
    let n = (scale.missions() / 2).max(4);
    let plans: Vec<MissionPlan> = (0..n)
        .map(|i| {
            if i % 3 == 2 {
                MissionPlan::multi_waypoint(3, 60.0 * scale.geometry(), 5.0, 40 + i as u64)
            } else {
                MissionPlan::straight_line((40.0 + 4.0 * i as f64) * scale.geometry().max(0.5), 5.0)
            }
        })
        .collect();

    let cases = fault_cases();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault matrix: benign-fault outcomes per defense ({n} missions per cell)\n\
         cell format: survival% (crash/stall count, missions ending Degraded)"
    );
    let widths = [20, 16, 16, 16, 16];
    let _ = writeln!(
        out,
        "{}",
        harness::row(
            &[
                "Fault".into(),
                "CI".into(),
                "Savior".into(),
                "SRR".into(),
                "PID-Piper".into(),
            ],
            &widths
        )
    );

    let mut pidpiper_cells: Vec<(&'static str, FaultCell)> = Vec::new();
    for (f, case) in cases.iter().enumerate() {
        let seed_base = FAULT_SEED_BASE + 100 * f as u64;
        let cells = [
            run_fault_cell(rv, &ci, &plans, case, seed_base),
            run_fault_cell(rv, &savior, &plans, case, seed_base),
            run_fault_cell(rv, &srr, &plans, case, seed_base),
            run_fault_cell(rv, &pidpiper, &plans, case, seed_base),
        ];
        let fmt = |c: &FaultCell| {
            format!("{:.0}% ({}, {})", c.survival_rate(), c.crash_or_stall, c.degraded)
        };
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[
                    case.label.into(),
                    fmt(&cells[0]),
                    fmt(&cells[1]),
                    fmt(&cells[2]),
                    fmt(&cells[3]),
                ],
                &widths
            )
        );
        pidpiper_cells.push((case.label, cells[3].clone()));
    }

    let _ = writeln!(
        out,
        "\nPID-Piper supervisor detail (health transitions / max recovery steps per cell):"
    );
    for (label, cell) in &pidpiper_cells {
        let _ = writeln!(
            out,
            "  {label:<20} transitions {:<3} max recovery steps {}",
            cell.health_transitions, cell.max_recovery_steps
        );
    }
    let _ = writeln!(
        out,
        "\nNo cell panicked; every mission ended in an explicit health state.\n\
         Degraded counts are structurally zero for CI/Savior/SRR (no supervisor);\n\
         for PID-Piper they count missions where the watchdog or FFC health\n\
         monitor latched the fail-safe rather than crashing."
    );
    harness::emit_report("fault_matrix", &out);
    out
}

/// Seed base for the resilience-soak missions (own block, far from the
/// matrix rows, so neither sweep can reshuffle the other).
const SOAK_SEED_BASE: u64 = 11_000;

/// Soak missions per run. The soak exercises the *execution layer* — panic
/// isolation, watchdog budgets, retry, quarantine, artifact integrity —
/// not defense quality, so a handful of short undefended missions suffices
/// at every scale.
const SOAK_MISSIONS: usize = 6;
const SOAK_PANIC_IDX: usize = 2;
const SOAK_STALL_IDX: usize = 4;

/// Builds the soak batch: `SOAK_MISSIONS` short missions, one carrying an
/// injected [`FaultKind::WorkerPanic`] and one a [`FaultKind::WorkerStall`]
/// heavy enough to exhaust the batch step budget.
fn soak_specs() -> Vec<MissionSpec> {
    (0..SOAK_MISSIONS)
        .map(|i| {
            let mut config = RunnerConfig::for_rv(RvId::ArduCopter).with_seed(SOAK_SEED_BASE + i as u64);
            if i == SOAK_PANIC_IDX {
                config = config.with_faults(vec![Fault::new(
                    FaultKind::WorkerPanic,
                    FaultSchedule::Continuous { start: 3.0 },
                )]);
            } else if i == SOAK_STALL_IDX {
                config = config.with_faults(vec![Fault::new(
                    FaultKind::WorkerStall { slowdown: 1000 },
                    FaultSchedule::Continuous { start: 2.0 },
                )]);
            }
            MissionSpec::clean(
                config.with_fault_seed(SOAK_SEED_BASE + 31 * i as u64),
                MissionPlan::straight_line(20.0 + 2.0 * i as f64, 5.0),
            )
        })
        .collect()
}

/// Resilience soak: drives the resilient batch path through injected
/// worker panics, a budget-exhausting stall and artifact bit-flip
/// corruption, asserting the quarantine and integrity contracts hold.
///
/// Three passes:
///
/// 1. **Quarantine** — a batch where mission `2` panics mid-flight and
///    mission `4` stalls past the step budget must complete every other
///    mission bit-identically to a plain serial run, and quarantine
///    exactly those two with typed [`MissionError`]s.
/// 2. **Determinism** — re-running the identical batch at a different
///    worker count must reproduce the whole
///    [`pidpiper_missions::BatchOutcome`], retry trace included (the
///    outcome is a pure function of `(specs, policy)`).
/// 3. **Corruption** — a single flipped payload byte in a saved deployment
///    must surface as a typed `ChecksumMismatch` on load (refuse-and-
///    retrain), never a silently-loaded model.
///
/// Any violated contract panics the run: this is the CI tripwire for the
/// resilient execution layer.
pub fn run_soak(scale: Scale) -> String {
    let _ = scale; // The soak is scale-invariant by design.
    let specs = soak_specs();
    let policy = ResiliencePolicy {
        budget: MissionBudget::unlimited().with_step_budget(5000),
        ..ResiliencePolicy::default()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Resilience soak: {SOAK_MISSIONS} missions, WorkerPanic on #{SOAK_PANIC_IDX}, \
         WorkerStall (x1000) on #{SOAK_STALL_IDX}, step budget 5000"
    );

    // Pass 1: quarantine + partial results. The default panic hook still
    // prints a backtrace for the injected panic before catch_unwind
    // swallows it, so tell the log reader it is expected.
    eprintln!(
        "[soak] panic backtraces below are expected: they are the injected \
         WorkerPanic being caught at the isolation boundary"
    );
    let outcome = MissionRunner::try_par_run_missions(&specs, &policy, |_, _| {
        Ok(Box::new(NoDefense::new()))
    });
    let quarantined: Vec<usize> = outcome.quarantined.iter().map(|q| q.index).collect();
    assert_eq!(
        quarantined,
        vec![SOAK_PANIC_IDX, SOAK_STALL_IDX],
        "exactly the sick missions must be quarantined"
    );
    assert!(
        matches!(
            outcome.quarantined[0].error,
            MissionError::Panicked { .. }
        ),
        "the panicking mission must carry a typed Panicked error, got {:?}",
        outcome.quarantined[0].error
    );
    assert!(
        matches!(
            outcome.quarantined[1].error,
            MissionError::StepBudgetExhausted { .. }
        ),
        "the stalled mission must carry a typed StepBudgetExhausted error, got {:?}",
        outcome.quarantined[1].error
    );
    assert_eq!(outcome.completed.len(), SOAK_MISSIONS - 2);
    for (i, result) in &outcome.completed {
        let spec = &specs[*i];
        let mut defense = NoDefense::new();
        let serial = MissionRunner::new(spec.config.clone()).run(
            &spec.plan,
            &mut defense,
            spec.attacks.clone(),
        );
        assert_eq!(
            *result, serial,
            "soak mission {i} diverged from its plain serial run"
        );
    }
    for q in &outcome.quarantined {
        let _ = writeln!(
            out,
            "  quarantined #{} after {} attempt(s): {}",
            q.index, q.attempts, q.error
        );
    }
    let _ = writeln!(
        out,
        "  {} missions completed bit-identically to their serial runs",
        outcome.completed.len()
    );

    // Pass 2: the outcome (retry trace included) is worker-count
    // independent and reproducible.
    let replay =
        MissionRunner::try_par_run_missions_with_jobs(1, &specs, &policy, |_, _| {
            Ok(Box::new(NoDefense::new()))
        });
    assert_eq!(outcome, replay, "soak batch must replay identically on 1 worker");
    for r in &outcome.retry_trace {
        let _ = writeln!(
            out,
            "  retry: mission {} attempt {} backoff {} steps ({})",
            r.mission, r.attempt, r.backoff_steps, r.error
        );
    }
    let _ = writeln!(out, "  replay on 1 worker reproduced the outcome, retry trace included");

    // Pass 3: artifact bit-flip corruption is refused with a typed error.
    out.push_str(&soak_corruption_pass());

    harness::emit_report("resilience_soak", &out);
    out
}

/// The corruption leg of the soak: saves a deployment, flips one payload
/// byte, and asserts the load is refused with [`ChecksumMismatch`] — the
/// caller's documented cue to retrain instead of flying the corrupt model.
///
/// [`ChecksumMismatch`]: pidpiper_core::ArtifactError::ChecksumMismatch
fn soak_corruption_pass() -> String {
    use pidpiper_core::ffc::PipelineConfig;
    use pidpiper_core::{artifact, AxisThresholds, FeatureSet, FfcModel, PidPiper, PidPiperConfig};
    use pidpiper_ml::{LstmRegressor, RegressorConfig};

    let mut out = String::new();
    let set = FeatureSet::FfcPruned;
    let net = RegressorConfig {
        input_dim: set.dim(),
        output_dim: 4,
        hidden: 4,
        fc_width: 4,
        window: 3,
    };
    // Untrained is fine: the integrity check guards bytes, not accuracy.
    let pp = PidPiper::new(
        FfcModel::new(
            LstmRegressor::new(net, 7),
            set,
            PipelineConfig {
                decimate: 1,
                gate: Default::default(),
            },
        ),
        PidPiperConfig::new(AxisThresholds::quad(18.0, 18.0, 18.0), [0.5; 4], 5, 12),
    );
    let path = std::env::temp_dir().join("pidpiper_soak_corruption.model");
    if let Err(err) = artifact::save_deployment(&path, &pp) {
        panic!("soak: could not save the corruption-pass artifact: {err}");
    }
    let Ok(mut bytes) = std::fs::read(&path) else {
        panic!("soak: could not read back {}", path.display());
    };
    // Flip one bit of the first payload byte (just past the header line).
    let payload_start = bytes
        .iter()
        .position(|b| *b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    bytes[payload_start] ^= 0x01;
    if let Err(err) = std::fs::write(&path, &bytes) {
        panic!("soak: could not write the corrupted artifact: {err}");
    }
    match artifact::load_deployment(&path) {
        Err(artifact::ArtifactError::ChecksumMismatch { expected, actual }) => {
            let _ = writeln!(
                out,
                "  corruption pass: 1-bit flip refused with ChecksumMismatch \
                 (expected {expected}, actual {actual}); caller retrains"
            );
        }
        Err(err) => panic!("soak: corruption misclassified as {err}"),
        Ok(_) => panic!("soak: a corrupted artifact was silently loaded"),
    }
    let _ = std::fs::remove_file(&path);
    out
}
