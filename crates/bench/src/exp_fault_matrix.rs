//! Fault matrix: mission outcomes for every defense under each benign
//! [`FaultKind`] — the graceful-degradation companion to Table III's
//! attack evaluation.
//!
//! Attacks are adversarial sensor biases; faults are the *benign* failure
//! modes a deployed defense must also survive (GPS dropouts, wedged
//! peripherals, NaN bursts, actuator derating, control-task overruns).
//! The matrix reports, per fault × defense cell, the survival rate
//! (missions ending without a crash or stall), the crash/stall count and
//! the count of missions ending in the latched `Degraded` fail-safe —
//! PID-Piper's supervisor is the only technique with an explicit degraded
//! mode, so that column doubles as a check that the watchdog and FFC
//! health monitor actually latch under sustained faults instead of
//! crashing or flying on a poisoned model.

use crate::harness::{self, Scale};
use pidpiper_faults::{Fault, FaultKind, FaultSchedule, SensorChannel};
use pidpiper_math::Vec3;
use pidpiper_missions::{Defense, MissionPlan, MissionSpec, RunnerConfig};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Seed base for the fault-matrix cells (each fault row gets its own
/// century so adding a row never reshuffles another row's missions).
const FAULT_SEED_BASE: u64 = 9000;

/// One fault scenario of the matrix: a display label plus the injected
/// fault's kind and activation schedule.
pub struct FaultCase {
    /// Row label in the report.
    pub label: &'static str,
    /// The injected fault mode.
    pub kind: FaultKind,
    /// When the fault is active.
    pub schedule: FaultSchedule,
}

/// The fault scenarios swept by the matrix — one per [`FaultKind`] variant,
/// with mid-mission activation so each mission has a clean prefix for the
/// defenses' monitors to settle on.
pub fn fault_cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            label: "gps dropout 4s",
            kind: FaultKind::GpsDropout,
            schedule: FaultSchedule::Windows(vec![(8.0, 12.0)]),
        },
        FaultCase {
            label: "frozen baro 10s",
            kind: FaultKind::FrozenSensor(SensorChannel::Baro),
            schedule: FaultSchedule::Windows(vec![(8.0, 18.0)]),
        },
        FaultCase {
            label: "nan bursts 0.5s/4s",
            kind: FaultKind::NanBurst,
            schedule: FaultSchedule::Intermittent {
                start: 8.0,
                on: 0.5,
                off: 4.0,
            },
        },
        FaultCase {
            label: "gyro stuck 2s",
            kind: FaultKind::GyroStuckAt(Vec3::new(0.02, -0.01, 0.0)),
            schedule: FaultSchedule::Windows(vec![(8.0, 10.0)]),
        },
        FaultCase {
            label: "actuators at 85%",
            kind: FaultKind::ActuatorSaturation { effort: 0.85 },
            schedule: FaultSchedule::Continuous { start: 8.0 },
        },
        FaultCase {
            label: "ctrl skip 1-in-3",
            kind: FaultKind::ControlSkip { every: 3 },
            schedule: FaultSchedule::Windows(vec![(8.0, 14.0)]),
        },
        FaultCase {
            label: "ctrl jitter p=0.2",
            kind: FaultKind::ControlJitter {
                skip_probability: 0.2,
            },
            schedule: FaultSchedule::Continuous { start: 8.0 },
        },
    ]
}

/// Outcome tallies for one `fault x defense` cell.
#[derive(Debug, Default, Clone)]
pub struct FaultCell {
    /// Missions run.
    pub total: usize,
    /// Missions ending without a crash or stall (success or miss).
    pub survived: usize,
    /// Missions reaching the destination within the 10 m radius.
    pub success: usize,
    /// Crashes and stalls.
    pub crash_or_stall: usize,
    /// Missions whose defense ended in the latched `Degraded` state.
    pub degraded: usize,
    /// Total health-state transitions across the cell's missions.
    pub health_transitions: usize,
    /// Largest recovery-steps count of any mission (watchdog-bound check).
    pub max_recovery_steps: usize,
}

impl FaultCell {
    /// Survival rate in percent.
    pub fn survival_rate(&self) -> f64 {
        100.0 * self.survived as f64 / self.total.max(1) as f64
    }
}

/// Runs one matrix cell: the mission set flown under `defense` with
/// `case`'s fault injected into every mission (mission `i` gets seed
/// `seed_base + i` and fault seed `seed_base + 31 * i`), fanned out over
/// the `PIDPIPER_JOBS` pool.
pub fn run_fault_cell<D>(
    rv: RvId,
    defense: &D,
    plans: &[MissionPlan],
    case: &FaultCase,
    seed_base: u64,
) -> FaultCell
where
    D: Defense + Clone + Send + Sync + 'static,
{
    let specs: Vec<MissionSpec> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            MissionSpec::clean(
                RunnerConfig::for_rv(rv)
                    .with_seed(seed_base + i as u64)
                    .with_faults(vec![Fault::new(case.kind.clone(), case.schedule.clone())])
                    .with_fault_seed(seed_base + 31 * i as u64),
                plan.clone(),
            )
        })
        .collect();
    let mut cell = FaultCell::default();
    for result in harness::par_with_defense(&specs, defense) {
        cell.total += 1;
        if result.outcome.is_success() {
            cell.success += 1;
        }
        if result.outcome.is_crash_or_stall() {
            cell.crash_or_stall += 1;
        } else {
            cell.survived += 1;
        }
        if result.final_health.is_degraded() {
            cell.degraded += 1;
        }
        cell.health_transitions += result.health_transitions;
        cell.max_recovery_steps = cell.max_recovery_steps.max(result.recovery_steps);
    }
    cell
}

/// Runs the fault matrix on the ArduCopter profile: every fault case
/// against CI, Savior, SRR and PID-Piper.
pub fn run(scale: Scale) -> String {
    let rv = RvId::ArduCopter;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let ci = harness::fit_ci(rv, &traces);
    let srr = harness::fit_srr(rv, &traces);
    let savior = harness::fit_savior(rv, &traces);

    // Half of Table III's mission count per cell: the matrix has 7x as
    // many cells, and fault outcomes saturate quickly (a fault either is
    // or is not survivable under a given defense).
    let n = (scale.missions() / 2).max(4);
    let plans: Vec<MissionPlan> = (0..n)
        .map(|i| {
            if i % 3 == 2 {
                MissionPlan::multi_waypoint(3, 60.0 * scale.geometry(), 5.0, 40 + i as u64)
            } else {
                MissionPlan::straight_line((40.0 + 4.0 * i as f64) * scale.geometry().max(0.5), 5.0)
            }
        })
        .collect();

    let cases = fault_cases();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault matrix: benign-fault outcomes per defense ({n} missions per cell)\n\
         cell format: survival% (crash/stall count, missions ending Degraded)"
    );
    let widths = [20, 16, 16, 16, 16];
    let _ = writeln!(
        out,
        "{}",
        harness::row(
            &[
                "Fault".into(),
                "CI".into(),
                "Savior".into(),
                "SRR".into(),
                "PID-Piper".into(),
            ],
            &widths
        )
    );

    let mut pidpiper_cells: Vec<(&'static str, FaultCell)> = Vec::new();
    for (f, case) in cases.iter().enumerate() {
        let seed_base = FAULT_SEED_BASE + 100 * f as u64;
        let cells = [
            run_fault_cell(rv, &ci, &plans, case, seed_base),
            run_fault_cell(rv, &savior, &plans, case, seed_base),
            run_fault_cell(rv, &srr, &plans, case, seed_base),
            run_fault_cell(rv, &pidpiper, &plans, case, seed_base),
        ];
        let fmt = |c: &FaultCell| {
            format!("{:.0}% ({}, {})", c.survival_rate(), c.crash_or_stall, c.degraded)
        };
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[
                    case.label.into(),
                    fmt(&cells[0]),
                    fmt(&cells[1]),
                    fmt(&cells[2]),
                    fmt(&cells[3]),
                ],
                &widths
            )
        );
        pidpiper_cells.push((case.label, cells[3].clone()));
    }

    let _ = writeln!(
        out,
        "\nPID-Piper supervisor detail (health transitions / max recovery steps per cell):"
    );
    for (label, cell) in &pidpiper_cells {
        let _ = writeln!(
            out,
            "  {label:<20} transitions {:<3} max recovery steps {}",
            cell.health_transitions, cell.max_recovery_steps
        );
    }
    let _ = writeln!(
        out,
        "\nNo cell panicked; every mission ended in an explicit health state.\n\
         Degraded counts are structurally zero for CI/Savior/SRR (no supervisor);\n\
         for PID-Piper they count missions where the watchdog or FFC health\n\
         monitor latched the fail-safe rather than crashing."
    );
    harness::emit_report("fault_matrix", &out);
    out
}
