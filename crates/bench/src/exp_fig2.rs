//! Figure 2 and the Section III study: PID parameters under GPS
//! manipulation (position error, roll fluctuation, effective-P adjustment,
//! rotation rate) plus the VIF collinearity table.

use crate::harness::{self, Scale};
use pidpiper_attacks::{Attack, AttackKind, Schedule};
use pidpiper_core::features::SensorPrimitives;
use pidpiper_math::{rad_to_deg, vif_all, Matrix, Vec3};
use pidpiper_missions::{MissionAttack, MissionPlan, MissionSpec, NoDefense, RunnerConfig};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Runs the Figure 2 experiment on the Pixhawk-drone profile: an
/// Arm → Takeoff → Waypoint → Land mission with intermittent 3–5 s GPS
/// spoofing bursts, dumping the paper's four traces and the VIF table.
pub fn run(_scale: Scale) -> String {
    let rv = RvId::PixhawkDrone;
    // Intermittent bursts as in Section III (3-5 s on, gaps between).
    let attack = Attack::new(
        AttackKind::GpsBias(Vec3::new(0.0, 6.0, 0.0)),
        Schedule::Intermittent {
            start: 10.0,
            on: 4.0,
            off: 5.0,
        },
    );
    // Two undefended missions (the attacked Fig. 2 run and the clean VIF
    // excitation run), flown as one batch; seeds 77/78 as before.
    let specs = [
        MissionSpec::clean(
            RunnerConfig::for_rv(rv).with_seed(77),
            MissionPlan::straight_line(60.0, 5.0),
        )
        .with_attacks(vec![MissionAttack::Scheduled(attack)]),
        MissionSpec::clean(
            RunnerConfig::for_rv(rv).with_seed(78),
            MissionPlan::polygon(4, 20.0, 5.0),
        ),
    ];
    let mut batch = harness::par_with_defense(&specs, &NoDefense::new()).into_iter();
    let result = batch.next().expect("attacked Fig. 2 run");
    let clean = batch.next().expect("clean VIF run");

    // Trace CSV: t, attack, position error, roll (deg), effective P,
    // rotation rate — Fig 2a-2d.
    let mut csv = String::from("t,attack,pos_err_m,roll_deg,effective_p,rotation_rate\n");
    for r in result.trace.records().iter().step_by(10) {
        let pe = (r.target.position - r.est.position).norm_xy();
        let _ = writeln!(
            csv,
            "{:.2},{},{:.3},{:.3},{:.3},{:.4}",
            r.t,
            u8::from(r.attack_active),
            pe,
            rad_to_deg(r.pid_signal.roll),
            r.effective_p,
            r.rotation_rate
        );
    }
    let csv_path = harness::experiments_dir().join("fig2_traces.csv");
    let _ = std::fs::write(&csv_path, &csv);

    // Summaries: fluctuation ranges before/during attack.
    let pre: Vec<&_> = result
        .trace
        .records()
        .iter()
        .filter(|r| r.t > 6.0 && r.t < 10.0)
        .collect();
    let during: Vec<&_> = result
        .trace
        .records()
        .iter()
        .filter(|r| r.attack_active)
        .collect();
    let span = |rs: &[&pidpiper_missions::TraceRecord], f: &dyn Fn(&pidpiper_missions::TraceRecord) -> f64| {
        let lo = rs.iter().map(|r| f(r)).fold(f64::INFINITY, f64::min);
        let hi = rs.iter().map(|r| f(r)).fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let roll_pre = span(&pre, &|r| rad_to_deg(r.pid_signal.roll));
    let roll_atk = span(&during, &|r| rad_to_deg(r.pid_signal.roll));
    let p_pre = span(&pre, &|r| r.effective_p);
    let p_atk = span(&during, &|r| r.effective_p);
    let rot_pre = span(&pre, &|r| r.rotation_rate);
    let rot_atk = span(&during, &|r| r.rotation_rate);

    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: Pixhawk drone under intermittent GPS manipulation");
    let _ = writeln!(out, "  full traces: {}", csv_path.display());
    let _ = writeln!(
        out,
        "  roll angle   steady [{:6.2}, {:6.2}] deg   under attack [{:6.2}, {:6.2}] deg",
        roll_pre.0, roll_pre.1, roll_atk.0, roll_atk.1
    );
    let _ = writeln!(
        out,
        "  effective P  steady [{:6.2}, {:6.2}]       under attack [{:6.2}, {:6.2}]",
        p_pre.0, p_pre.1, p_atk.0, p_atk.1
    );
    let _ = writeln!(
        out,
        "  rot. rate    steady [{:6.2}, {:6.2}] rad/s under attack [{:6.2}, {:6.2}] rad/s",
        rot_pre.0, rot_pre.1, rot_atk.0, rot_atk.1
    );
    let _ = writeln!(
        out,
        "\nPaper (Fig. 2): small position errors (< 0.2 m) drive roll fluctuations of\n\
         -10..20 deg; the effective P coefficient and rotation rate inflate under attack."
    );

    // Section III: VIF table over the PID controller's parameters (the
    // paper regresses each controller parameter against the others). A
    // polygon mission provides the dynamic excitation; the feature set is
    // the controller-parameter catalogue, not raw duplicated sensor
    // channels (estimated and raw GPS positions are the same quantity and
    // would be trivially collinear).
    // (One covariance channel only: the estimator's x/y covariances follow
    // an identical recursion and duplicated columns are trivially
    // collinear.)
    const PARAM_NAMES: [&str; 17] = [
        "pos_err_x", "pos_err_y", "pos_err_z", "vel_x", "vel_y", "vel_z", "acc_x", "acc_y",
        "acc_z", "roll", "pitch", "yaw", "rate_p", "rate_q", "rate_r", "pos_var", "rot_rate",
    ];
    let rows: Vec<Vec<f64>> = clean
        .trace
        .records()
        .iter()
        .step_by(10)
        .map(|r| {
            let prims = SensorPrimitives::collect(&r.est, &r.readings);
            let pe = r.target.position - r.est.position;
            let mut v = vec![pe.x, pe.y, pe.z];
            v.extend_from_slice(&prims.velocity);
            v.extend_from_slice(&prims.acceleration);
            v.extend_from_slice(&prims.attitude);
            v.extend_from_slice(&prims.body_rates);
            v.push(prims.position_variance[0]);
            v.push(r.rotation_rate);
            v
        })
        .collect();
    let m = Matrix::from_rows(&rows);
    let vifs = vif_all(&m);
    let _ = writeln!(out, "\nSection III: Variance Inflation Factors of the controller parameters");
    let mut indexed: Vec<(usize, f64)> = vifs.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (i, v) in &indexed {
        let v_str = if v.is_infinite() {
            ">1000 (exact)".to_string()
        } else {
            format!("{v:.1}")
        };
        let _ = writeln!(out, "  {:<10} VIF {}", PARAM_NAMES[*i], v_str);
    }
    let high: Vec<&str> = indexed
        .iter()
        .filter(|(_, v)| *v > 10.0)
        .map(|(i, _)| PARAM_NAMES[*i])
        .collect();
    let _ = writeln!(
        out,
        "\nHigh-VIF (> 10) parameters: {}\n\
         Paper: velocity, acceleration, angular rotation and angular speed cluster at\n\
         VIF 22-29 while positions stay near 1-1.6 — the pruned FFC feature set drops\n\
         the high-VIF channels.",
        high.join(", ")
    );
    harness::emit_report("fig2_overcompensation", &out);
    out
}
