//! Table I: mission profiles and empirically derived thresholds per RV.

use crate::harness::{self, Scale};
use pidpiper_missions::MissionPlan;
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Runs the Table I experiment: per subject RV, the mission mix used for
/// training/calibration and the empirically derived per-axis thresholds.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I: mission profiles and calibrated thresholds (roll, pitch, yaw; '-' = unmonitored)"
    );
    let _ = writeln!(
        out,
        "{}",
        harness::row(
            &[
                "RV".into(),
                "SL".into(),
                "MW".into(),
                "CP".into(),
                "HE".into(),
                "PP".into(),
                "thresholds (deg)".into(),
                "drifts".into(),
            ],
            &[12, 3, 3, 3, 3, 3, 28, 28],
        )
    );
    for rv in RvId::ALL {
        let (sl, mw, cp, he, pp) = MissionPlan::table1_mix(rv);
        let traces = harness::collect_traces(rv, scale);
        let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
        let thr = pidpiper.config().thresholds;
        let fmt_opt = |o: Option<f64>| o.map_or("-".to_string(), |v| format!("{v:.1}"));
        let thr_str = format!(
            "{}, {}, {}",
            fmt_opt(thr.roll),
            fmt_opt(thr.pitch),
            fmt_opt(thr.yaw)
        );
        let d = pidpiper.config().drifts;
        let drift_str = format!("{:.1}, {:.1}, {:.1}", d[0], d[1], d[2]);
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[
                    rv.name().into(),
                    sl.to_string(),
                    mw.to_string(),
                    cp.to_string(),
                    he.to_string(),
                    pp.to_string(),
                    thr_str,
                    drift_str,
                ],
                &[12, 3, 3, 3, 3, 3, 28, 28],
            )
        );
    }
    let _ = writeln!(
        out,
        "\nPaper (Table I): thresholds cluster near 18-24 deg; rovers monitor yaw only.\n\
         Thresholds here are calibrated by replaying the deployed monitor on the\n\
         validation missions (see DESIGN.md); absolute values depend on the simulated\n\
         sensor stack, the per-axis structure and rover yaw-only rows reproduce the paper."
    );
    harness::emit_report("table1_thresholds", &out);
    out
}
