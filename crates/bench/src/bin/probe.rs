//! Probe: does windy training data degrade recovery quality?
use pidpiper_bench::exp_table3::run_overt_missions;
use pidpiper_core::{Trainer, TrainerConfig};
use pidpiper_missions::{MissionPlan, MissionRunner, RunnerConfig};
use pidpiper_sim::RvId;

fn main() {
    let rv = RvId::ArduCopter;
    // No-wind training set (the v3 recipe).
    let plans = MissionPlan::table1_missions(rv, 7, 0.5);
    let traces: Vec<_> = plans.iter().enumerate().map(|(i, p)| {
        MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(500 + i as u64)).run_clean(p).trace
    }).collect();
    let trained = Trainer::new(TrainerConfig::default()).train(&traces, false);
    eprintln!("no-wind model: {}; thr {:?}; drifts {:?}",
        trained.report, trained.thresholds, trained.pidpiper.config().drifts);
    let pp = trained.pidpiper;
    let eval: Vec<MissionPlan> = (0..12).map(|i| {
        if i % 3 == 2 { MissionPlan::multi_waypoint(3, 30.0, 5.0, 40 + i as u64) }
        else { MissionPlan::straight_line(40.0 + 2.0 * i as f64, 5.0) }
    }).collect();
    let row = run_overt_missions(rv, &pp, &eval, 7000);
    eprintln!("no-wind: success {}/{} crash/stall {} mean dev {:.1}",
        row.success, row.total, row.crash_or_stall, row.mean_deviation());
    // Checksummed atomic save; a failed save costs the probe nothing but
    // the cache, so report and move on instead of panicking.
    let path = std::path::Path::new("models/nowind-ArduCopter.pidpiper");
    if let Err(err) = pidpiper_core::artifact::save_deployment(path, &pp) {
        eprintln!("could not save {}: {err}", path.display());
    }
}
