//! `pidpiper-bench-perf`: the inference hot-path benchmark with a counting
//! global allocator.
//!
//! Runs [`pidpiper_bench::exp_perf`] with allocation accounting and writes
//! `BENCH_inference.json` to the workspace root. Exits non-zero if the
//! streaming `observe` loop performed *any* heap allocation after warm-up
//! — the zero-allocation property is part of the engine's contract, not
//! just a nice-to-have (CI's perf-smoke job runs this binary).

use pidpiper_bench::exp_perf;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of `alloc`/`realloc` calls since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Delegates every operation to [`System`], counting allocations.
struct CountingAlloc;

// SAFETY: forwards directly to the system allocator; the relaxed counter
// increment does not affect allocation behavior or layout.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn main() {
    let cfg = exp_perf::PerfConfig::from_env();
    let counter = || ALLOCATIONS.load(Ordering::Relaxed);
    let report = exp_perf::run_perf(&cfg, Some(&counter));
    exp_perf::write_report(&report);
    let per_tick = report
        .allocations_per_tick
        .expect("counter was supplied, so the rate was measured");
    if per_tick > 0.0 {
        eprintln!(
            "FAIL: streaming observe loop allocated ({per_tick:.3} allocations/tick over {} \
             ticks); the hot path must be allocation-free after warm-up",
            report.ticks
        );
        std::process::exit(1);
    }
    println!("zero-allocation assertion: OK");
}
