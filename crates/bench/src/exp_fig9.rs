//! Figure 9: deviation caused by stealthy attacks as a function of mission
//! distance — (a) PID-Piper vs SRR vs CI on ArduCopter, (b) PID-Piper vs
//! Savior on PX4.

use crate::harness::{self, Scale};
use pidpiper_attacks::StealthyAttack;
use pidpiper_math::Vec3;
use pidpiper_missions::{Defense, MissionAttack, MissionPlan, MissionSpec, RunnerConfig};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Builds the stealthy straight-line sweep: one spec per mission distance,
/// all with the same seed (the paper varies distance, not noise draw).
fn sweep_specs(rv: RvId, distances: &[f64], seed: u64) -> Vec<MissionSpec> {
    distances
        .iter()
        .map(|&distance| {
            let mut config = RunnerConfig::for_rv(rv).with_seed(seed);
            // Long missions need a proportionally longer time cap.
            config.max_duration = (distance / 2.0).max(120.0) + 120.0;
            let attack = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
            MissionSpec::clean(config, MissionPlan::straight_line(distance, 5.0))
                .with_attacks(vec![MissionAttack::Stealthy(attack)])
        })
        .collect()
}

/// Runs the sweep under one defense, returning per-distance maximum
/// cross-track deviations (m) — the quantity Fig. 9 plots.
fn stealthy_sweep<D>(rv: RvId, distances: &[f64], seed: u64, defense: &D) -> Vec<f64>
where
    D: Defense + Clone + Send + Sync + 'static,
{
    harness::par_with_defense(&sweep_specs(rv, distances, seed), defense)
        .into_iter()
        .map(|r| r.max_path_deviation.max(r.final_deviation))
        .collect()
}

/// Runs the Figure 9 experiment.
pub fn run(scale: Scale) -> String {
    let distances = scale.stealthy_distances();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9: maximum deviation under stealthy GPS attacks vs mission distance (m)"
    );

    // (a) ArduCopter: PID-Piper vs SRR vs CI.
    let rv = RvId::ArduCopter;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let ci = harness::fit_ci(rv, &traces);
    let srr = harness::fit_srr(rv, &traces);

    let ci_devs = stealthy_sweep(rv, &distances, 2100, &ci);
    let srr_devs = stealthy_sweep(rv, &distances, 2100, &srr);
    let pp_devs = stealthy_sweep(rv, &distances, 2100, &pidpiper);

    let _ = writeln!(out, "\n(a) ArduCopter");
    let widths = [10, 12, 12, 12];
    let _ = writeln!(
        out,
        "{}",
        harness::row(
            &["dist m".into(), "CI".into(), "SRR".into(), "PID-Piper".into()],
            &widths
        )
    );
    for (i, &d) in distances.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[
                    format!("{d:.0}"),
                    format!("{:.1}", ci_devs[i]),
                    format!("{:.1}", srr_devs[i]),
                    format!("{:.1}", pp_devs[i]),
                ],
                &widths
            )
        );
    }

    // (b) PX4: PID-Piper vs Savior.
    let rv = RvId::Px4Solo;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let savior = harness::fit_savior(rv, &traces);

    let sv_devs = stealthy_sweep(rv, &distances, 2200, &savior);
    let pp_devs = stealthy_sweep(rv, &distances, 2200, &pidpiper);

    let _ = writeln!(out, "\n(b) PX4 Solo");
    let widths = [10, 12, 12];
    let _ = writeln!(
        out,
        "{}",
        harness::row(&["dist m".into(), "Savior".into(), "PID-Piper".into()], &widths)
    );
    for (i, &d) in distances.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[
                    format!("{d:.0}"),
                    format!("{:.1}", sv_devs[i]),
                    format!("{:.1}", pp_devs[i]),
                ],
                &widths
            )
        );
    }

    let _ = writeln!(
        out,
        "\nPaper (Fig. 9): window-based CI/SRR admit deviations growing past 140-160 m at\n\
         5 km; CUSUM-based Savior caps deviation (~70 m) regardless of distance; PID-Piper\n\
         caps it below ~10 m — 7x tighter than Savior. Success under stealthy attacks:\n\
         PID-Piper 100 %, others 0 %."
    );
    harness::emit_report("fig9_stealthy", &out);
    out
}
