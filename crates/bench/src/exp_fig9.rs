//! Figure 9: deviation caused by stealthy attacks as a function of mission
//! distance — (a) PID-Piper vs SRR vs CI on ArduCopter, (b) PID-Piper vs
//! Savior on PX4.

use crate::harness::{self, Scale};
use pidpiper_attacks::StealthyAttack;
use pidpiper_math::Vec3;
use pidpiper_missions::{Defense, MissionAttack, MissionPlan, MissionRunner, RunnerConfig};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Runs one stealthy straight-line mission and returns the maximum
/// cross-track deviation (m) — the quantity Fig. 9 plots.
fn stealthy_run(rv: RvId, defense: &mut dyn Defense, distance: f64, seed: u64) -> f64 {
    let plan = MissionPlan::straight_line(distance, 5.0);
    let mut config = RunnerConfig::for_rv(rv).with_seed(seed);
    // Long missions need a proportionally longer time cap.
    config.max_duration = (distance / 2.0).max(120.0) + 120.0;
    let runner = MissionRunner::new(config);
    let attack = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
    let result = runner.run(&plan, defense, vec![MissionAttack::Stealthy(attack)]);
    result.max_path_deviation.max(result.final_deviation)
}

/// Runs the Figure 9 experiment.
pub fn run(scale: Scale) -> String {
    let distances = scale.stealthy_distances();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9: maximum deviation under stealthy GPS attacks vs mission distance (m)"
    );

    // (a) ArduCopter: PID-Piper vs SRR vs CI.
    let rv = RvId::ArduCopter;
    let traces = harness::collect_traces(rv, scale);
    let mut pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let mut ci = harness::fit_ci(rv, &traces);
    let mut srr = harness::fit_srr(rv, &traces);

    let _ = writeln!(out, "\n(a) ArduCopter");
    let widths = [10, 12, 12, 12];
    let _ = writeln!(
        out,
        "{}",
        harness::row(
            &["dist m".into(), "CI".into(), "SRR".into(), "PID-Piper".into()],
            &widths
        )
    );
    let mut fig9a = vec![Vec::new(), Vec::new(), Vec::new()];
    for &d in &distances {
        let ci_dev = stealthy_run(rv, &mut ci, d, 2100);
        let srr_dev = stealthy_run(rv, &mut srr, d, 2100);
        let pp_dev = stealthy_run(rv, &mut pidpiper, d, 2100);
        fig9a[0].push(ci_dev);
        fig9a[1].push(srr_dev);
        fig9a[2].push(pp_dev);
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[
                    format!("{d:.0}"),
                    format!("{ci_dev:.1}"),
                    format!("{srr_dev:.1}"),
                    format!("{pp_dev:.1}"),
                ],
                &widths
            )
        );
    }

    // (b) PX4: PID-Piper vs Savior.
    let rv = RvId::Px4Solo;
    let traces = harness::collect_traces(rv, scale);
    let mut pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let mut savior = harness::fit_savior(rv, &traces);

    let _ = writeln!(out, "\n(b) PX4 Solo");
    let widths = [10, 12, 12];
    let _ = writeln!(
        out,
        "{}",
        harness::row(&["dist m".into(), "Savior".into(), "PID-Piper".into()], &widths)
    );
    for &d in &distances {
        let sv_dev = stealthy_run(rv, &mut savior, d, 2200);
        let pp_dev = stealthy_run(rv, &mut pidpiper, d, 2200);
        let _ = writeln!(
            out,
            "{}",
            harness::row(
                &[format!("{d:.0}"), format!("{sv_dev:.1}"), format!("{pp_dev:.1}")],
                &widths
            )
        );
    }

    let _ = writeln!(
        out,
        "\nPaper (Fig. 9): window-based CI/SRR admit deviations growing past 140-160 m at\n\
         5 km; CUSUM-based Savior caps deviation (~70 m) regardless of distance; PID-Piper\n\
         caps it below ~10 m — 7x tighter than Savior. Success under stealthy attacks:\n\
         PID-Piper 100 %, others 0 %."
    );
    harness::emit_report("fig9_stealthy", &out);
    out
}
