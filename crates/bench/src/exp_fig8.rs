//! Figure 8: recovery case studies — (a) gyroscope attack on the Sky-viper
//! profile (PID vs ML roll traces), (b) GPS attack on the Pixhawk profile
//! (deviation with and without PID-Piper).

use crate::harness::{self, Scale};
use pidpiper_attacks::AttackPreset;
use pidpiper_math::rad_to_deg;
use pidpiper_core::PidPiper;
use pidpiper_missions::{
    Defense, MissionAttack, MissionPlan, MissionResult, MissionRunner, MissionSpec, NoDefense,
    RunnerConfig,
};
use pidpiper_sim::RvId;
use std::fmt::Write as _;

/// Flies the same attacked mission twice — once under `pidpiper`, once
/// undefended — as one parallel batch, returning (protected, unprotected).
/// Both arms share a seed so their noise streams are identical.
fn protected_vs_unprotected(
    rv: RvId,
    pidpiper: &PidPiper,
    plan: &MissionPlan,
    attack: MissionAttack,
    seed: u64,
) -> (MissionResult, MissionResult) {
    let spec = MissionSpec::clean(RunnerConfig::for_rv(rv).with_seed(seed), plan.clone())
        .with_attacks(vec![attack]);
    let specs = [spec.clone(), spec];
    let mut results = MissionRunner::par_run_missions(&specs, |i| -> Box<dyn Defense + Send> {
        if i == 0 {
            Box::new(pidpiper.clone())
        } else {
            Box::new(NoDefense::new())
        }
    })
    .into_iter();
    let protected = results.next().expect("protected arm");
    let unprotected = results.next().expect("unprotected arm");
    (protected, unprotected)
}

/// Runs the Figure 8 experiment.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();

    // --- (a) Sky-viper gyro attack: roll traces under recovery.
    let rv = RvId::SkyViper;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let plan = MissionPlan::straight_line(40.0, 5.0);
    let attack = AttackPreset::GyroOvert.instantiate(8.0, (0.0, 0.0));
    let (protected, unprotected) = protected_vs_unprotected(
        rv,
        &pidpiper,
        &plan,
        MissionAttack::Scheduled(attack),
        1201,
    );

    let mut csv = String::from("t,attack,recovery,pid_roll_deg,flown_roll_deg,truth_roll_deg\n");
    for r in protected.trace.records().iter().step_by(10) {
        let _ = writeln!(
            csv,
            "{:.2},{},{},{:.3},{:.3},{:.3}",
            r.t,
            u8::from(r.attack_active),
            u8::from(r.recovery_active),
            rad_to_deg(r.pid_signal.roll),
            rad_to_deg(r.flown_signal.roll),
            rad_to_deg(r.truth.attitude.x),
        );
    }
    let csv_a = harness::experiments_dir().join("fig8a_skyviper_gyro.csv");
    let _ = std::fs::write(&csv_a, &csv);

    let span = |res: &MissionResult, flown: bool| {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in res.trace.records().iter().filter(|r| r.attack_active) {
            let v = rad_to_deg(if flown {
                r.flown_signal.roll
            } else {
                r.pid_signal.roll
            });
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    };
    let (pid_lo, pid_hi) = span(&protected, false);
    let (ml_lo, ml_hi) = span(&protected, true);
    let _ = writeln!(out, "Figure 8a: Sky-viper gyroscope attack (trace: {})", csv_a.display());
    let _ = writeln!(
        out,
        "  PID roll under attack: [{pid_lo:.1}, {pid_hi:.1}] deg; flown (recovered) roll: [{ml_lo:.1}, {ml_hi:.1}] deg"
    );
    let _ = writeln!(
        out,
        "  with PID-Piper: {:?} (deviation {:.1} m); without: {:?} (deviation {:.1} m)",
        protected.outcome, protected.final_deviation, unprotected.outcome, unprotected.final_deviation
    );

    // --- (b) Pixhawk GPS attack: deviation with and without PID-Piper.
    let rv = RvId::PixhawkDrone;
    let traces = harness::collect_traces(rv, scale);
    let pidpiper = harness::trained_pidpiper(rv, scale, &traces);
    let plan = MissionPlan::straight_line(50.0, 5.0);
    let attack = AttackPreset::GpsOvert.instantiate(8.0, (0.0, 0.0));
    let (protected, unprotected) = protected_vs_unprotected(
        rv,
        &pidpiper,
        &plan,
        MissionAttack::Scheduled(attack),
        1301,
    );

    let mut csv = String::from("t,protected_cross_track_m,protected_x,unprot_cross_track_m,unprot_x\n");
    let n = protected.trace.len().min(unprotected.trace.len());
    for i in (0..n).step_by(20) {
        let p = &protected.trace.records()[i];
        let u = &unprotected.trace.records()[i];
        let _ = writeln!(
            csv,
            "{:.2},{:.3},{:.2},{:.3},{:.2}",
            p.t,
            p.truth.position.y.abs(),
            p.truth.position.x,
            u.truth.position.y.abs(),
            u.truth.position.x,
        );
    }
    let csv_b = harness::experiments_dir().join("fig8b_pixhawk_gps.csv");
    let _ = std::fs::write(&csv_b, &csv);
    let _ = writeln!(out, "\nFigure 8b: Pixhawk GPS attack (trace: {})", csv_b.display());
    let _ = writeln!(
        out,
        "  deviation with PID-Piper: {:.1} m ({:?}); without: {:.1} m ({:?}); max cross-track {:.1} vs {:.1} m",
        protected.final_deviation,
        protected.outcome,
        unprotected.final_deviation,
        unprotected.outcome,
        protected.max_path_deviation,
        unprotected.max_path_deviation,
    );
    let _ = writeln!(
        out,
        "\nPaper (Fig. 8): the attack swings PID roll between -20 and 12 deg while the ML\n\
         limits fluctuations to +/-5 deg; GPS-attack deviation ~5 m with PID-Piper vs ~25 m\n\
         without, and the protected deviation stays bounded as the mission continues."
    );
    harness::emit_report("fig8_recovery_traces", &out);
    out
}
