//! Runs the adversarial campaign study and writes `BENCH_adversarial.json`;
//! see pidpiper_bench::exp_adversarial. Set `PIDPIPER_ADVERSARIAL_SMOKE=1`
//! for the reduced CI grid (one vehicle, 1 generation x 2 children). A
//! worker-divergence or a broken stealth gate exits nonzero: an
//! irreproducible adversarial result is worthless as a regression anchor.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    let smoke = std::env::var("PIDPIPER_ADVERSARIAL_SMOKE").is_ok();
    eprintln!(
        "[bench] running adversarial_campaign at {scale:?} scale{} \
         (set PIDPIPER_SCALE=full for paper scale)",
        if smoke { " (smoke grid)" } else { "" }
    );
    let (report, data) = pidpiper_bench::exp_adversarial::run_adversarial(scale, smoke);
    pidpiper_bench::exp_adversarial::write_report(scale, &data);
    println!("{report}");
    if !data.worker_invariant {
        eprintln!("[bench] adversarial search diverged across worker counts");
        std::process::exit(1);
    }
    if !data.stealth_respected() {
        eprintln!("[bench] a recorded winner violated the stealth gate");
        std::process::exit(1);
    }
}
