//! Regenerates the paper artifact; see pidpiper_bench::exp_table1.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running table1_thresholds at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_table1::run(scale);
}
