//! Regenerates the paper artifact; see pidpiper_bench::exp_design_study.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running design_mae_study at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_design_study::run(scale);
}
