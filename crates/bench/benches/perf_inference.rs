//! Inference hot-path latency: seed (allocating) FFC observe loop vs the
//! streaming engine. Wraps [`pidpiper_bench::exp_perf`]; also writes
//! `BENCH_inference.json`. For the allocation-count assertion, run the
//! `pidpiper-bench-perf` binary instead (a bench target cannot swap the
//! global allocator without imposing it on every bench in the suite).

use criterion::{criterion_group, criterion_main, Criterion};
use pidpiper_bench::exp_perf;

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = exp_perf::bench
);
criterion_main!(benches);
