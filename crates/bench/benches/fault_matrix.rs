//! Regenerates the fault-matrix artifact and runs the resilience soak;
//! see pidpiper_bench::exp_fault_matrix. Set `PIDPIPER_SOAK_ONLY=1` to
//! skip the (training-heavy) matrix and run only the soak — the CI
//! resilience job uses this to get a fast, typed-failure smoke signal.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    if std::env::var("PIDPIPER_SOAK_ONLY").is_ok() {
        eprintln!("[bench] PIDPIPER_SOAK_ONLY set: running the resilience soak only");
        pidpiper_bench::exp_fault_matrix::run_soak(scale);
        return;
    }
    eprintln!("[bench] running fault_matrix at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_fault_matrix::run(scale);
    pidpiper_bench::exp_fault_matrix::run_soak(scale);
}
