//! Regenerates the fault-matrix artifact; see pidpiper_bench::exp_fault_matrix.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running fault_matrix at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_fault_matrix::run(scale);
}
