//! Figure 7 (deviation CDF during recovery) shares its runs with Table III;
//! this target regenerates the Table III experiment, whose report includes
//! the CDF series for SRR and PID-Piper.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] Figure 7 CDF data is produced by the Table III runs");
    pidpiper_bench::exp_table3::run(scale);
}
