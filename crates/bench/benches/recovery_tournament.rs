//! Runs the Algorithm-1 fingerprint regression gate, then the recovery-
//! strategy tournament, and writes `BENCH_recovery.json`; see
//! pidpiper_bench::exp_recovery. Set `PIDPIPER_TOURNAMENT_SMOKE=1` for
//! the reduced CI grid (one vehicle, two cases, two missions per cell).
//! A gate failure exits nonzero *before* any tournament flying: a
//! strategy comparison on a diverged Algorithm 1 would be meaningless.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    let smoke = std::env::var("PIDPIPER_TOURNAMENT_SMOKE").is_ok();

    let gate = pidpiper_bench::exp_recovery::baseline_gate();
    let gate_passed = gate.is_ok();
    match &gate {
        Ok(()) => eprintln!(
            "[bench] fingerprint gate: all {} baseline cases bit-identical",
            pidpiper_bench::exp_recovery::BASELINE_FINGERPRINTS.len()
        ),
        Err(report) => {
            eprintln!(
                "[bench] fingerprint gate FAILED — Algorithm-1-on-trait diverged from the \
                 pre-refactor supervisor:\n{report}"
            );
            std::process::exit(1);
        }
    }

    eprintln!(
        "[bench] running recovery_tournament at {scale:?} scale{} \
         (set PIDPIPER_SCALE=full for paper scale)",
        if smoke { " (smoke grid)" } else { "" }
    );
    let (report, cells) = pidpiper_bench::exp_recovery::run_tournament(scale, smoke);
    pidpiper_bench::exp_recovery::write_report(scale, smoke, gate_passed, &cells);
    println!("{report}");
}
