//! Section VI-F: performance overhead — latency of the autopilot's control
//! cycle with and without PID-Piper, plus the component kernels.
//!
//! The paper reports ~6.35 % average CPU overhead on the real RVs. Here
//! the equivalent quantity is the fraction of the 10 ms control-cycle
//! budget (100 Hz loop) the PID-Piper pipeline consumes; the summary line
//! printed at the end reports it directly, and the criterion groups give
//! the per-kernel latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use pidpiper_control::{QuadController, TargetState};
use pidpiper_core::features::SensorPrimitives;
use pidpiper_core::sanitizer::SensorSanitizer;
use pidpiper_core::{Trainer, TrainerConfig};
use pidpiper_math::Vec3;
use pidpiper_missions::{FlightPhase, MissionPlan, MissionRunner, RunnerConfig};
use pidpiper_sensors::{Estimator, NoiseConfig, SensorSuite};
use pidpiper_sim::quadcopter::QuadParams;
use pidpiper_sim::{RigidBodyState, RvId};
use std::hint::black_box;
use std::time::Instant;

/// Trains a small-but-real FFC for the latency benches (cached via the
/// bench harness where possible is unnecessary here — a short training run
/// suffices because latency does not depend on the weights' values).
fn quick_ffc() -> pidpiper_core::FfcModel {
    let traces: Vec<_> = (0..2)
        .map(|i| {
            let runner =
                MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(600 + i));
            runner
                .run_clean(&MissionPlan::straight_line(20.0, 5.0))
                .trace
        })
        .collect();
    let cfg = TrainerConfig {
        stages: [(1, 0.01), (0, 0.0), (0, 0.0)],
        ..TrainerConfig::default()
    };
    let trainer = Trainer::new(cfg);
    trainer.train_ffc(&traces).0
}

fn bench_control_cycle(c: &mut Criterion) {
    let params = QuadParams::default();
    let mut controller = QuadController::new(&params);
    let mut estimator = Estimator::new();
    let mut suite = SensorSuite::new(NoiseConfig::default(), 1);
    let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
    let target = TargetState::hover_at(Vec3::new(10.0, 0.0, 5.0), 0.0);

    c.bench_function("autopilot_cycle_without_pidpiper", |b| {
        b.iter(|| {
            let r = suite.sample(&truth, 0.01);
            let est = estimator.update(&r, 0.01);
            black_box(controller.step(&est, &target, None, 0.01))
        })
    });

    let mut ffc = quick_ffc();
    let mut sanitizer = SensorSanitizer::default();
    c.bench_function("autopilot_cycle_with_pidpiper", |b| {
        b.iter(|| {
            let r = suite.sample(&truth, 0.01);
            let est = estimator.update(&r, 0.01);
            let out = controller.step(&est, &target, None, 0.01);
            // The PID-Piper pipeline: sanitize, extract features, predict.
            let (clean, shadow) = sanitizer.process(&r, 0.01);
            let prims = SensorPrimitives::collect(&shadow, &clean);
            black_box(ffc.observe(&prims, &target, FlightPhase::Cruise { wp_index: 0 }));
            black_box(out)
        })
    });

    // Headline number: fraction of the 10 ms cycle budget consumed.
    let mut sanitizer = SensorSanitizer::default();
    let mut ffc = quick_ffc();
    let r = suite.sample(&truth, 0.01);
    let n = 2000;
    let t0 = Instant::now();
    for _ in 0..n {
        let (clean, shadow) = sanitizer.process(&r, 0.01);
        let prims = SensorPrimitives::collect(&shadow, &clean);
        black_box(ffc.observe(&prims, &target, FlightPhase::Cruise { wp_index: 0 }));
    }
    let per_cycle = t0.elapsed().as_secs_f64() / n as f64;
    let budget = 0.01;
    println!(
        "\n[Section VI-F] PID-Piper pipeline: {:.3} ms per control cycle = {:.2} % of the \
         10 ms (100 Hz) budget (paper: ~6.35 % CPU overhead; power impact ~12 % x duty = {:.2} %)",
        per_cycle * 1e3,
        100.0 * per_cycle / budget,
        0.12 * 100.0 * per_cycle / budget
    );
}

fn bench_kernels(c: &mut Criterion) {
    let mut sanitizer = SensorSanitizer::default();
    let mut suite = SensorSuite::new(NoiseConfig::default(), 2);
    let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
    let r = suite.sample(&truth, 0.01);
    c.bench_function("sanitizer_process", |b| {
        b.iter(|| black_box(sanitizer.process(&r, 0.01)))
    });

    let mut ffc = quick_ffc();
    let target = TargetState::hover_at(Vec3::new(10.0, 0.0, 5.0), 0.0);
    let (clean, shadow) = sanitizer.process(&r, 0.01);
    let prims = SensorPrimitives::collect(&shadow, &clean);
    c.bench_function("ffc_observe", |b| {
        b.iter(|| black_box(ffc.observe(&prims, &target, FlightPhase::Cruise { wp_index: 0 })))
    });

    let a: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05).sin()).collect();
    let b2: Vec<f64> = (0..400).map(|i| ((i as f64 - 3.0) * 0.05).sin()).collect();
    c.bench_function("dtw_400", |b| {
        b.iter(|| black_box(pidpiper_math::dtw_distance(&a, &b2)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_control_cycle, bench_kernels
}
criterion_main!(benches);
