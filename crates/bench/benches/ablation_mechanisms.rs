//! Ablation study over PID-Piper's mechanisms; see pidpiper_bench::exp_ablation.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running ablation_mechanisms at {scale:?} scale");
    pidpiper_bench::exp_ablation::run(scale);
}
