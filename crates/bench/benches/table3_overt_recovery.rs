//! Regenerates the paper artifact; see pidpiper_bench::exp_table3.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running table3_overt_recovery at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_table3::run(scale);
}
