//! Regenerates the paper artifact; see pidpiper_bench::exp_table2.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running table2_false_positives at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_table2::run(scale);
}
