//! Regenerates the paper artifact; see pidpiper_bench::exp_fig9.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running fig9_stealthy at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_fig9::run(scale);
}
