//! Regenerates the paper artifact; see pidpiper_bench::exp_fig8.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running fig8_recovery_traces at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_fig8::run(scale);
}
