//! Regenerates the paper artifact; see pidpiper_bench::exp_table4.
fn main() {
    let scale = pidpiper_bench::Scale::from_env();
    eprintln!("[bench] running table4_real_rvs at {scale:?} scale (set PIDPIPER_SCALE=full for paper scale)");
    pidpiper_bench::exp_table4::run(scale);
}
