//! The fault taxonomy.

use pidpiper_math::Vec3;

/// Which sensor a channel-scoped fault affects. Mirrors the sensor set the
/// attack engine's `AttackKind` perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorChannel {
    /// GPS position + velocity fix.
    Gps,
    /// Barometric altitude.
    Baro,
    /// Gyroscope body rates.
    Gyro,
    /// Accelerometer specific force.
    Accel,
    /// Magnetometer heading.
    Mag,
}

impl SensorChannel {
    /// Human-readable sensor name (matches the attack engine's names).
    pub fn name(self) -> &'static str {
        match self {
            SensorChannel::Gps => "gps",
            SensorChannel::Baro => "baro",
            SensorChannel::Gyro => "gyro",
            SensorChannel::Accel => "accel",
            SensorChannel::Mag => "mag",
        }
    }
}

/// One benign fault mode.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The GPS receiver loses its solution: position and velocity report
    /// NaN (what a real driver surfaces on an invalid fix). Exercises the
    /// runner's hold-last-good boundary.
    GpsDropout,
    /// A sensor stops updating and repeats its last pre-fault sample
    /// (wedged peripheral). The values stay finite — only *stale*.
    FrozenSensor(SensorChannel),
    /// Corrupted samples across the whole suite: each raw channel is
    /// independently replaced by NaN or ±Inf with probability 0.7 per
    /// step, pattern drawn from the injector's seeded RNG.
    NanBurst,
    /// The gyroscope latches a constant body-rate reading (rad/s).
    GyroStuckAt(Vec3),
    /// Actuators deliver only `effort` (0..=1) of the commanded output —
    /// ESC derating, prop damage, servo wear.
    ActuatorSaturation {
        /// Fraction of commanded effort actually delivered.
        effort: f64,
    },
    /// The control task overruns deterministically: every `every`-th
    /// active control step is skipped and the previous command stays
    /// latched (`every = 1` = total control loss while active).
    ControlSkip {
        /// Period of the skip among active steps (must be ≥ 1).
        every: usize,
    },
    /// Scheduling jitter: each active control step is skipped with
    /// probability `skip_probability`, drawn from the injector's seeded
    /// RNG.
    ControlJitter {
        /// Per-step probability (0..=1) that the step is skipped.
        skip_probability: f64,
    },
    /// The worker flying the mission dies: the injector panics on the
    /// first active control step, modelling a crashed mission process.
    /// Plain `MissionRunner::run` propagates the panic; the resilient
    /// batch layer (`pidpiper-missions`) catches it with `catch_unwind`
    /// and quarantines the mission as `MissionError::Panicked`.
    WorkerPanic,
    /// The worker stalls: each active control step costs `slowdown`
    /// budget units instead of 1 (wedged I/O, priority inversion, a
    /// livelocked co-process). Flight dynamics and the RNG stream are
    /// untouched — only the step-budget accounting of
    /// `MissionRunner::run_bounded` sees the fault, so a stalled mission
    /// trips `MissionError::StepBudgetExhausted` deterministically.
    WorkerStall {
        /// Budget units consumed per active control step (must be ≥ 1).
        slowdown: u64,
    },
}

impl FaultKind {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::GpsDropout => "gps-dropout",
            FaultKind::FrozenSensor(_) => "frozen-sensor",
            FaultKind::NanBurst => "nan-burst",
            FaultKind::GyroStuckAt(_) => "gyro-stuck",
            FaultKind::ActuatorSaturation { .. } => "act-saturation",
            FaultKind::ControlSkip { .. } => "ctrl-skip",
            FaultKind::ControlJitter { .. } => "ctrl-jitter",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::WorkerStall { .. } => "worker-stall",
        }
    }

    /// Whether this fault perturbs the sensor stream (as opposed to the
    /// actuation or the control-loop timing).
    pub fn is_sensor_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::GpsDropout
                | FaultKind::FrozenSensor(_)
                | FaultKind::NanBurst
                | FaultKind::GyroStuckAt(_)
        )
    }

    /// Whether this fault targets the execution substrate (the worker
    /// running the mission) rather than the vehicle's sensors, actuators
    /// or control-loop timing.
    pub fn is_worker_fault(&self) -> bool {
        matches!(self, FaultKind::WorkerPanic | FaultKind::WorkerStall { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let kinds = [
            FaultKind::GpsDropout,
            FaultKind::FrozenSensor(SensorChannel::Baro),
            FaultKind::NanBurst,
            FaultKind::GyroStuckAt(Vec3::ZERO),
            FaultKind::ActuatorSaturation { effort: 0.5 },
            FaultKind::ControlSkip { every: 2 },
            FaultKind::ControlJitter {
                skip_probability: 0.3,
            },
            FaultKind::WorkerPanic,
            FaultKind::WorkerStall { slowdown: 10 },
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn sensor_fault_classification() {
        assert!(FaultKind::GpsDropout.is_sensor_fault());
        assert!(FaultKind::NanBurst.is_sensor_fault());
        assert!(!FaultKind::ControlSkip { every: 1 }.is_sensor_fault());
        assert!(!FaultKind::ActuatorSaturation { effort: 0.5 }.is_sensor_fault());
        assert!(!FaultKind::WorkerPanic.is_sensor_fault());
        assert!(!FaultKind::WorkerStall { slowdown: 2 }.is_sensor_fault());
    }

    #[test]
    fn worker_fault_classification() {
        assert!(FaultKind::WorkerPanic.is_worker_fault());
        assert!(FaultKind::WorkerStall { slowdown: 2 }.is_worker_fault());
        assert!(!FaultKind::GpsDropout.is_worker_fault());
        assert!(!FaultKind::ControlJitter { skip_probability: 0.1 }.is_worker_fault());
    }

    #[test]
    fn channel_names_match_attack_engine() {
        assert_eq!(SensorChannel::Gps.name(), "gps");
        assert_eq!(SensorChannel::Mag.name(), "mag");
    }
}
