//! Fault activation schedules.
//!
//! Deliberately the same shape as `pidpiper_attacks::Schedule` (half-open
//! windows, intermittent bursts) so experiment code can express attack and
//! fault timelines in one vocabulary, without this crate depending on the
//! attack engine.

/// When a fault is active during a mission timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSchedule {
    /// Active from `start` (s) until the end of the mission.
    Continuous {
        /// Activation time (s).
        start: f64,
    },
    /// Active during explicit `[start, end)` windows (s).
    Windows(Vec<(f64, f64)>),
    /// Repeating bursts: active for `on` seconds, inactive for `off`
    /// seconds, starting at `start`.
    Intermittent {
        /// First activation time (s).
        start: f64,
        /// Burst duration (s).
        on: f64,
        /// Gap between bursts (s).
        off: f64,
    },
    /// Active whenever *any* member schedule is active (set union).
    ///
    /// Campaign programs use this to stack several activation patterns
    /// onto one fault channel. Members are evaluated in `Vec` order; the
    /// union is commutative, so the activation set is independent of
    /// member order.
    Stacked(Vec<FaultSchedule>),
    /// Never active (placeholder).
    Never,
}

impl FaultSchedule {
    /// Whether the fault is active at mission time `t` (seconds).
    ///
    /// # Examples
    ///
    /// ```
    /// use pidpiper_faults::FaultSchedule;
    ///
    /// let s = FaultSchedule::Intermittent { start: 10.0, on: 3.0, off: 5.0 };
    /// assert!(!s.is_active(9.9));
    /// assert!(s.is_active(11.0));
    /// assert!(!s.is_active(14.0)); // in the off gap
    /// assert!(s.is_active(18.5));  // second burst
    /// ```
    pub fn is_active(&self, t: f64) -> bool {
        match self {
            FaultSchedule::Continuous { start } => t >= *start,
            FaultSchedule::Windows(ws) => ws.iter().any(|&(a, b)| t >= a && t < b),
            FaultSchedule::Intermittent { start, on, off } => {
                if t < *start {
                    return false;
                }
                let period = on + off;
                if period <= 0.0 {
                    return true;
                }
                let phase = (t - start) % period;
                phase < *on
            }
            FaultSchedule::Stacked(members) => members.iter().any(|m| m.is_active(t)),
            FaultSchedule::Never => false,
        }
    }

    /// The same schedule shifted `offset` seconds later (negative shifts
    /// pull it earlier; window edges are clamped at zero).
    ///
    /// This is how per-session fault schedules are derived at fleet
    /// scale: the fleet engine phase-shifts one template schedule by a
    /// session-dependent offset, so a 100k-session fleet exercises the
    /// fault path continuously instead of tripping every monitor on the
    /// same tick.
    ///
    /// # Examples
    ///
    /// ```
    /// use pidpiper_faults::FaultSchedule;
    ///
    /// let template = FaultSchedule::Intermittent { start: 5.0, on: 1.0, off: 9.0 };
    /// let session_7 = template.shifted(0.7);
    /// assert!(!session_7.is_active(5.5));
    /// assert!(session_7.is_active(5.8));
    /// ```
    pub fn shifted(&self, offset: f64) -> FaultSchedule {
        match self {
            FaultSchedule::Continuous { start } => FaultSchedule::Continuous {
                start: (start + offset).max(0.0),
            },
            FaultSchedule::Windows(ws) => FaultSchedule::Windows(
                ws.iter()
                    .map(|&(a, b)| ((a + offset).max(0.0), (b + offset).max(0.0)))
                    .collect(),
            ),
            FaultSchedule::Intermittent { start, on, off } => FaultSchedule::Intermittent {
                start: (start + offset).max(0.0),
                on: *on,
                off: *off,
            },
            FaultSchedule::Stacked(members) => {
                FaultSchedule::Stacked(members.iter().map(|m| m.shifted(offset)).collect())
            }
            FaultSchedule::Never => FaultSchedule::Never,
        }
    }

    /// The first activation time, if the schedule ever activates.
    pub fn first_activation(&self) -> Option<f64> {
        match self {
            FaultSchedule::Continuous { start } => Some(*start),
            FaultSchedule::Windows(ws) => {
                pidpiper_math::float::min_of(ws.iter().map(|&(a, _)| a))
            }
            FaultSchedule::Intermittent { start, .. } => Some(*start),
            FaultSchedule::Stacked(members) => {
                pidpiper_math::float::min_of(members.iter().filter_map(|m| m.first_activation()))
            }
            FaultSchedule::Never => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_from_start() {
        let s = FaultSchedule::Continuous { start: 5.0 };
        assert!(!s.is_active(4.99));
        assert!(s.is_active(5.0));
        assert!(s.is_active(1e6));
        assert_eq!(s.first_activation(), Some(5.0));
    }

    #[test]
    fn windows_half_open() {
        let s = FaultSchedule::Windows(vec![(1.0, 2.0), (4.0, 6.0)]);
        assert!(!s.is_active(0.5));
        assert!(s.is_active(1.0));
        assert!(!s.is_active(2.0));
        assert!(s.is_active(5.9));
        assert!(!s.is_active(6.0));
        assert_eq!(s.first_activation(), Some(1.0));
    }

    #[test]
    fn intermittent_periodicity() {
        let s = FaultSchedule::Intermittent {
            start: 0.0,
            on: 2.0,
            off: 3.0,
        };
        for k in 0..5 {
            let base = k as f64 * 5.0;
            assert!(s.is_active(base + 0.1), "burst {k}");
            assert!(!s.is_active(base + 2.1), "gap {k}");
        }
    }

    #[test]
    fn shifted_translates_every_variant() {
        let c = FaultSchedule::Continuous { start: 5.0 }.shifted(2.5);
        assert_eq!(c.first_activation(), Some(7.5));
        // Negative shifts clamp at the mission start.
        let clamped = FaultSchedule::Continuous { start: 1.0 }.shifted(-4.0);
        assert_eq!(clamped.first_activation(), Some(0.0));
        let w = FaultSchedule::Windows(vec![(1.0, 2.0)]).shifted(3.0);
        assert!(w.is_active(4.5));
        assert!(!w.is_active(1.5));
        let i = FaultSchedule::Intermittent {
            start: 10.0,
            on: 3.0,
            off: 5.0,
        }
        .shifted(1.0);
        assert!(!i.is_active(10.5));
        assert!(i.is_active(11.5));
        let st =
            FaultSchedule::Stacked(vec![FaultSchedule::Continuous { start: 2.0 }]).shifted(1.0);
        assert_eq!(st.first_activation(), Some(3.0));
        assert_eq!(FaultSchedule::Never.shifted(9.0), FaultSchedule::Never);
    }

    #[test]
    fn stacked_is_member_union() {
        let s = FaultSchedule::Stacked(vec![
            FaultSchedule::Windows(vec![(1.0, 2.0)]),
            FaultSchedule::Intermittent {
                start: 10.0,
                on: 1.0,
                off: 4.0,
            },
        ]);
        assert!(s.is_active(1.5));
        assert!(!s.is_active(3.0));
        assert!(s.is_active(10.5));
        assert!(!s.is_active(12.0));
        assert_eq!(s.first_activation(), Some(1.0));
    }

    #[test]
    fn never_never_activates() {
        let s = FaultSchedule::Never;
        assert!(!s.is_active(0.0));
        assert!(!s.is_active(1e9));
        assert_eq!(s.first_activation(), None);
    }

    #[test]
    fn mirrors_attack_schedule_semantics() {
        // The contract with pidpiper-attacks: same variants, same
        // activation algebra. Spot-check against hand-computed values the
        // attack engine's own tests assert.
        let s = FaultSchedule::Intermittent {
            start: 10.0,
            on: 3.0,
            off: 5.0,
        };
        for (t, want) in [(9.9, false), (11.0, true), (14.0, false), (18.5, true)] {
            assert_eq!(s.is_active(t), want, "t = {t}");
        }
    }
}
