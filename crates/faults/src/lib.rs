//! Benign-fault injection for the mission runner.
//!
//! The attack engine (`pidpiper-attacks`) models an *adversary*: biases
//! chosen to defeat detection. This crate models everything that goes
//! wrong without an adversary — the faults any fielded autopilot must
//! survive:
//!
//! - **GPS dropout**: the receiver loses its fix and reports non-finite
//!   position/velocity (exactly what a hardware driver surfaces when the
//!   solution is invalid);
//! - **frozen sensor**: a channel stops updating and repeats its last
//!   pre-fault value (stale I2C peripheral, wedged driver thread);
//! - **NaN/Inf burst**: corrupted samples across the whole suite (DMA
//!   corruption, uninitialised memory reads);
//! - **gyro stuck-at**: the gyroscope latches a constant rate;
//! - **actuator saturation**: motors/servos deliver only a fraction of the
//!   commanded effort (ESC derating, prop damage);
//! - **control-step skip / jitter**: the control task overruns and the
//!   previous command stays latched for a cycle (scheduling faults);
//! - **worker panic / stall**: the *execution substrate* fails — the
//!   worker flying the mission dies (panics) or wedges (each control step
//!   costs many budget units). These exercise the resilient batch layer
//!   in `pidpiper-missions` (panic isolation, step budgets, quarantine)
//!   rather than the vehicle's own defenses.
//!
//! Every fault is scheduled by a [`FaultSchedule`] that mirrors the attack
//! engine's `Schedule` shape, and all randomness (the jitter fault, the
//! NaN-burst corruption pattern) flows from one explicit seed, so a
//! faulted mission is exactly as deterministic as a clean one — the
//! serial/parallel bit-identity contract holds under faults too.

#![deny(missing_docs)]

pub mod inject;
pub mod kind;
pub mod schedule;

pub use inject::{Fault, FaultInjector};
pub use kind::{FaultKind, SensorChannel};
pub use schedule::FaultSchedule;
