//! The stateful, seeded fault injector the mission runner drives.

use crate::kind::{FaultKind, SensorChannel};
use crate::schedule::FaultSchedule;
use pidpiper_sensors::SensorReadings;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it goes wrong.
    pub schedule: FaultSchedule,
}

impl Fault {
    /// Creates a fault from a kind and schedule.
    pub fn new(kind: FaultKind, schedule: FaultSchedule) -> Self {
        Fault { kind, schedule }
    }
}

/// Per-mission fault state: applies the configured faults to the sensor
/// stream, the actuation and the control-loop timing, deterministically
/// from one seed.
///
/// Construct one per mission (the runner does this from
/// `RunnerConfig::faults` + `fault_seed`); all random draws — the
/// NaN-burst corruption pattern, control jitter — come from the injector's
/// own `StdRng`, and draws only occur while the owning fault's schedule is
/// active, so the stream is a pure function of `(faults, seed, timeline)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    faults: Vec<Fault>,
    rng: StdRng,
    /// Last pre-fault sample per fault (frozen-sensor state).
    frozen: Vec<Option<SensorReadings>>,
    /// Count of active control steps per fault (skip periodicity).
    active_steps: Vec<usize>,
}

/// Per-channel corruption probability of the NaN burst.
const NAN_BURST_P: f64 = 0.7;

impl FaultInjector {
    /// Creates an injector for one mission.
    ///
    /// # Panics
    ///
    /// Panics if a `ControlSkip` period is zero, a `ControlJitter`
    /// probability is outside `[0, 1]`, an `ActuatorSaturation` effort
    /// is outside `[0, 1]`, or a `WorkerStall` slowdown is zero.
    pub fn new(faults: Vec<Fault>, seed: u64) -> Self {
        for f in &faults {
            match f.kind {
                FaultKind::ControlSkip { every } => {
                    assert!(every >= 1, "ControlSkip period must be >= 1");
                }
                FaultKind::WorkerStall { slowdown } => {
                    assert!(slowdown >= 1, "WorkerStall slowdown must be >= 1");
                }
                FaultKind::ControlJitter { skip_probability } => {
                    assert!(
                        (0.0..=1.0).contains(&skip_probability),
                        "ControlJitter probability must be in [0, 1]"
                    );
                }
                FaultKind::ActuatorSaturation { effort } => {
                    assert!(
                        (0.0..=1.0).contains(&effort),
                        "ActuatorSaturation effort must be in [0, 1]"
                    );
                }
                _ => {}
            }
        }
        let n = faults.len();
        FaultInjector {
            faults,
            rng: StdRng::seed_from_u64(seed),
            frozen: vec![None; n],
            active_steps: vec![0; n],
        }
    }

    /// Whether no faults are configured (the injector is a no-op).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The configured faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies all active sensor faults to one sample in place. Returns
    /// `true` when any sensor fault perturbed the sample.
    ///
    /// Must be called exactly once per control step, in step order: the
    /// frozen-sensor faults snapshot the last *inactive* sample here, and
    /// the NaN burst consumes seeded RNG draws on active steps.
    pub fn apply_sensors(&mut self, r: &mut SensorReadings, t: f64) -> bool {
        let mut any = false;
        for (i, fault) in self.faults.iter().enumerate() {
            if !fault.kind.is_sensor_fault() {
                continue;
            }
            let active = fault.schedule.is_active(t);
            match &fault.kind {
                FaultKind::GpsDropout if active => {
                    r.gps_position = pidpiper_math::Vec3::splat(f64::NAN);
                    r.gps_velocity = pidpiper_math::Vec3::splat(f64::NAN);
                    any = true;
                }
                FaultKind::FrozenSensor(channel) => {
                    if active {
                        // Freeze at the last pre-fault sample; if the fault
                        // is active from the first step, the first faulty
                        // sample itself latches.
                        let snapshot = *self.frozen[i].get_or_insert(*r);
                        copy_channel(*channel, &snapshot, r);
                        any = true;
                    } else {
                        self.frozen[i] = Some(*r);
                    }
                }
                FaultKind::NanBurst if active => {
                    corrupt_burst(&mut self.rng, r);
                    any = true;
                }
                FaultKind::GyroStuckAt(rate) if active => {
                    r.gyro = *rate;
                    any = true;
                }
                _ => {}
            }
        }
        any
    }

    /// Whether this control step should be skipped (command latched from
    /// the previous step). Call exactly once per control step, after
    /// [`FaultInjector::apply_sensors`]. Returns `true` when any timing
    /// fault fires.
    pub fn skip_control(&mut self, t: f64) -> bool {
        let mut skip = false;
        for (i, fault) in self.faults.iter().enumerate() {
            match fault.kind {
                FaultKind::ControlSkip { every } if fault.schedule.is_active(t) => {
                    self.active_steps[i] += 1;
                    if self.active_steps[i].is_multiple_of(every) {
                        skip = true;
                    }
                }
                FaultKind::ControlJitter { skip_probability }
                    if fault.schedule.is_active(t) && self.rng.gen_bool(skip_probability) =>
                {
                    skip = true;
                }
                _ => {}
            }
        }
        skip
    }

    /// Polls the worker-level faults at the top of a control step.
    ///
    /// Consumes no RNG draws, so missions without worker faults are
    /// bit-identical whether or not the runner calls this.
    ///
    /// # Panics
    ///
    /// Panics on the first step where a [`FaultKind::WorkerPanic`]
    /// schedule is active — that *is* the fault: it models the mission's
    /// worker dying mid-batch. Plain `MissionRunner::run` propagates the
    /// panic; the resilient batch layer catches it with `catch_unwind`
    /// and quarantines the mission.
    pub fn check_worker(&self, t: f64) {
        for fault in &self.faults {
            if fault.kind == FaultKind::WorkerPanic && fault.schedule.is_active(t) {
                panic!("injected worker panic at t={t:.2}s");
            }
        }
    }

    /// Budget cost of the control step at time `t`: `1` normally, or the
    /// largest active [`FaultKind::WorkerStall`] slowdown. Consumes no RNG
    /// draws and never perturbs flight dynamics — only the step-budget
    /// accounting of `MissionRunner::run_bounded` observes it.
    pub fn step_cost(&self, t: f64) -> u64 {
        let mut cost = 1;
        for fault in &self.faults {
            if let FaultKind::WorkerStall { slowdown } = fault.kind {
                if fault.schedule.is_active(t) {
                    cost = cost.max(slowdown);
                }
            }
        }
        cost
    }

    /// Applies active actuator-saturation faults to a slice of actuator
    /// efforts (motor thrusts, rover throttle/steering) in place. Returns
    /// `true` when any saturation fault was active.
    pub fn apply_effort(&mut self, efforts: &mut [f64], t: f64) -> bool {
        let mut any = false;
        for fault in &self.faults {
            if let FaultKind::ActuatorSaturation { effort } = fault.kind {
                if fault.schedule.is_active(t) {
                    for e in efforts.iter_mut() {
                        *e *= effort;
                    }
                    any = true;
                }
            }
        }
        any
    }
}

/// Copies one sensor channel of `from` into `to`.
fn copy_channel(channel: SensorChannel, from: &SensorReadings, to: &mut SensorReadings) {
    match channel {
        SensorChannel::Gps => {
            to.gps_position = from.gps_position;
            to.gps_velocity = from.gps_velocity;
        }
        SensorChannel::Baro => to.baro_altitude = from.baro_altitude,
        SensorChannel::Gyro => to.gyro = from.gyro,
        SensorChannel::Accel => to.accel = from.accel,
        SensorChannel::Mag => to.mag_heading = from.mag_heading,
    }
}

/// Replaces each raw channel with NaN or ±Inf with probability
/// [`NAN_BURST_P`], pattern drawn from `rng`.
fn corrupt_burst(rng: &mut StdRng, r: &mut SensorReadings) {
    let mut hit = |v: &mut f64| {
        if rng.gen_bool(NAN_BURST_P) {
            *v = match rng.gen_range(0..3u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
        }
    };
    for axis in 0..3 {
        hit(&mut r.gps_position[axis]);
        hit(&mut r.gps_velocity[axis]);
        hit(&mut r.gyro[axis]);
        hit(&mut r.accel[axis]);
    }
    hit(&mut r.baro_altitude);
    hit(&mut r.mag_heading);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_math::Vec3;

    fn sample(x: f64) -> SensorReadings {
        SensorReadings {
            gps_position: Vec3::new(x, x + 1.0, x + 2.0),
            gps_velocity: Vec3::splat(0.5),
            baro_altitude: x + 2.0,
            gyro: Vec3::new(0.01, 0.02, 0.03),
            accel: Vec3::new(0.0, 0.0, 9.81),
            mag_heading: 0.1,
        }
    }

    #[test]
    fn gps_dropout_nans_only_gps() {
        let mut inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::GpsDropout,
                FaultSchedule::Windows(vec![(1.0, 2.0)]),
            )],
            7,
        );
        let mut r = sample(3.0);
        assert!(!inj.apply_sensors(&mut r, 0.5));
        assert!(r.is_finite());
        assert!(inj.apply_sensors(&mut r, 1.5));
        assert!(r.gps_position.x.is_nan());
        assert!(r.gps_velocity.z.is_nan());
        assert!(r.gyro.is_finite());
        assert!(r.baro_altitude.is_finite());
    }

    #[test]
    fn frozen_sensor_repeats_last_prefault_value() {
        let mut inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::FrozenSensor(SensorChannel::Baro),
                FaultSchedule::Continuous { start: 1.0 },
            )],
            7,
        );
        let mut r = sample(10.0);
        inj.apply_sensors(&mut r, 0.9); // pre-fault: snapshot 12.0
        let mut r2 = sample(50.0);
        assert!(inj.apply_sensors(&mut r2, 1.1));
        assert_eq!(r2.baro_altitude, 12.0, "baro frozen at pre-fault value");
        assert_eq!(r2.gps_position.x, 50.0, "other channels untouched");
    }

    #[test]
    fn frozen_from_step_one_latches_first_sample() {
        let mut inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::FrozenSensor(SensorChannel::Gyro),
                FaultSchedule::Continuous { start: 0.0 },
            )],
            7,
        );
        let mut r = sample(1.0);
        r.gyro = Vec3::new(0.5, 0.0, 0.0);
        inj.apply_sensors(&mut r, 0.01);
        let mut r2 = sample(2.0);
        inj.apply_sensors(&mut r2, 0.02);
        assert_eq!(r2.gyro, Vec3::new(0.5, 0.0, 0.0));
    }

    #[test]
    fn nan_burst_corrupts_and_is_deterministic() {
        let run = || {
            let mut inj = FaultInjector::new(
                vec![Fault::new(
                    FaultKind::NanBurst,
                    FaultSchedule::Continuous { start: 0.0 },
                )],
                99,
            );
            let mut out = Vec::new();
            for i in 0..20 {
                let mut r = sample(i as f64);
                inj.apply_sensors(&mut r, 0.01 * (i + 1) as f64);
                out.push(r);
            }
            out
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            // Bitwise equality including NaN patterns.
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        assert!(
            a.iter().any(|r| !r.is_finite()),
            "a 0.7-per-channel burst must corrupt something in 20 steps"
        );
    }

    #[test]
    fn gyro_stuck_at_overrides_rates() {
        let stuck = Vec3::new(0.0, 0.3, 0.0);
        let mut inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::GyroStuckAt(stuck),
                FaultSchedule::Continuous { start: 0.0 },
            )],
            7,
        );
        let mut r = sample(0.0);
        assert!(inj.apply_sensors(&mut r, 1.0));
        assert_eq!(r.gyro, stuck);
    }

    #[test]
    fn control_skip_period() {
        let mut inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::ControlSkip { every: 3 },
                FaultSchedule::Continuous { start: 0.0 },
            )],
            7,
        );
        let skips: Vec<bool> = (1..=9).map(|i| inj.skip_control(i as f64 * 0.01)).collect();
        assert_eq!(
            skips,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn control_jitter_is_seeded() {
        let run = |seed| {
            let mut inj = FaultInjector::new(
                vec![Fault::new(
                    FaultKind::ControlJitter {
                        skip_probability: 0.4,
                    },
                    FaultSchedule::Continuous { start: 0.0 },
                )],
                seed,
            );
            (0..50).map(|i| inj.skip_control(i as f64 * 0.01)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same seed, same skip pattern");
        let skips = run(5);
        let n = skips.iter().filter(|s| **s).count();
        assert!(n > 5 && n < 45, "~40% skip rate, got {n}/50");
    }

    #[test]
    fn actuator_saturation_scales_efforts() {
        let mut inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::ActuatorSaturation { effort: 0.5 },
                FaultSchedule::Windows(vec![(0.0, 1.0)]),
            )],
            7,
        );
        let mut motors = [4.0, 2.0, 4.0, 2.0];
        assert!(inj.apply_effort(&mut motors, 0.5));
        assert_eq!(motors, [2.0, 1.0, 2.0, 1.0]);
        assert!(!inj.apply_effort(&mut motors, 1.5));
        assert_eq!(motors, [2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_injector_is_inert() {
        let mut inj = FaultInjector::new(Vec::new(), 7);
        assert!(inj.is_empty());
        let mut r = sample(0.0);
        let before = r;
        assert!(!inj.apply_sensors(&mut r, 1.0));
        assert_eq!(r, before);
        assert!(!inj.skip_control(1.0));
        let mut m = [1.0];
        assert!(!inj.apply_effort(&mut m, 1.0));
        assert_eq!(m, [1.0]);
    }

    #[test]
    fn worker_panic_fires_only_while_active() {
        let inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::WorkerPanic,
                FaultSchedule::Windows(vec![(5.0, 6.0)]),
            )],
            7,
        );
        inj.check_worker(1.0); // inactive: no panic
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.check_worker(5.5)));
        assert!(caught.is_err(), "active WorkerPanic must panic");
    }

    #[test]
    fn worker_stall_scales_step_cost_while_active() {
        let inj = FaultInjector::new(
            vec![Fault::new(
                FaultKind::WorkerStall { slowdown: 40 },
                FaultSchedule::Windows(vec![(2.0, 4.0)]),
            )],
            7,
        );
        assert_eq!(inj.step_cost(1.0), 1);
        assert_eq!(inj.step_cost(3.0), 40);
        assert_eq!(inj.step_cost(5.0), 1);
    }

    #[test]
    fn overlapping_stalls_take_the_largest_slowdown() {
        let inj = FaultInjector::new(
            vec![
                Fault::new(
                    FaultKind::WorkerStall { slowdown: 10 },
                    FaultSchedule::Continuous { start: 0.0 },
                ),
                Fault::new(
                    FaultKind::WorkerStall { slowdown: 3 },
                    FaultSchedule::Continuous { start: 0.0 },
                ),
            ],
            7,
        );
        assert_eq!(inj.step_cost(1.0), 10);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn zero_stall_slowdown_rejected() {
        let _ = FaultInjector::new(
            vec![Fault::new(
                FaultKind::WorkerStall { slowdown: 0 },
                FaultSchedule::Never,
            )],
            7,
        );
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_skip_period_rejected() {
        let _ = FaultInjector::new(
            vec![Fault::new(
                FaultKind::ControlSkip { every: 0 },
                FaultSchedule::Never,
            )],
            7,
        );
    }
}
