//! Physical-attack injection engine.
//!
//! The paper emulates physical attacks "through targeted software
//! modifications" — bias values added to raw sensor measurements — because
//! real spoofing hardware (GPS transmitters, acoustic emitters) was not
//! available. We do exactly the same: attacks mutate the
//! [`pidpiper_sensors::SensorReadings`] struct between the sensor
//! simulation and the estimator.
//!
//! Two attack classes (paper Section II-B):
//!
//! - **Overt attacks** ([`overt`]): large biases injected on a schedule to
//!   cause immediate disruption. The paper's three instances: gyroscope
//!   bias producing over 20° of attitude error (Attack-1), GPS bias
//!   producing over 20 m of position error (Attack-2), and a gyroscope
//!   attack during the vulnerable landing phase (Attack-3).
//! - **Stealthy attacks** ([`stealthy`]): an attacker who knows the
//!   detection threshold injects the largest bias that keeps the monitor's
//!   statistic just below it; over a long mission this still causes large
//!   deviations against window-based detectors.

#![deny(missing_docs)]

pub mod envelope;
pub mod overt;
pub mod schedule;
pub mod stealthy;

pub use envelope::{Envelope, EnvelopeAttack};
pub use overt::{Attack, AttackKind, AttackPreset};
pub use schedule::Schedule;
pub use stealthy::StealthyAttack;
