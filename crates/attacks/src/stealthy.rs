//! Stealthy attacks: threshold-aware controlled bias injection.
//!
//! Per the paper (Section II-B and its reference \[18\]), a stealthy
//! attacker who knows the
//! detection threshold `tau` injects false data such that the monitor's
//! statistic never exceeds it. We implement this as a closed-loop injector:
//! each step the attacker observes the defender's current statistic (the
//! threat model grants snooping on control inputs/outputs) and ramps the
//! bias up while a safety margin remains, backing off as the statistic
//! approaches the threshold.
//!
//! Against *window-based* monitors (CI, SRR) with their large thresholds,
//! the sustainable bias is large, so deviation grows with mission length.
//! Against *CUSUM* monitors the sustainable persistent bias is bounded by
//! the drift term, capping the deviation — the paper's Figure 9 contrast.

use pidpiper_math::Vec3;
use pidpiper_sensors::SensorReadings;

/// Which sensor channel the stealthy attack perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealthyChannel {
    /// Lateral GPS spoofing: bias added to the GPS fix along `direction`.
    GpsLateral,
    /// Gyroscope bias on the roll axis.
    GyroRoll,
}

/// A closed-loop stealthy attacker.
///
/// # Examples
///
/// ```
/// use pidpiper_attacks::StealthyAttack;
/// use pidpiper_math::Vec3;
///
/// let mut atk = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
/// // Monitor far from threshold: attacker ramps up.
/// let b1 = atk.advance(0.0, 10.0, 0.01);
/// let b2 = atk.advance(0.0, 10.0, 0.01);
/// assert!(b2 > b1);
/// ```
#[derive(Debug, Clone)]
pub struct StealthyAttack {
    channel: StealthyChannel,
    direction: Vec3,
    /// Fraction of the threshold the attacker aims to sit at (e.g. 0.9).
    margin: f64,
    /// Current bias magnitude.
    bias: f64,
    /// Ramp rate (units/s) when below the margin.
    ramp_rate: f64,
    /// Hard cap on the bias magnitude (physical plausibility).
    max_bias: f64,
    active: bool,
}

impl StealthyAttack {
    /// Stealthy lateral GPS spoofing along `direction` (normalized
    /// internally), aiming at `margin` x threshold.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not in `(0, 1]`.
    pub fn gps_lateral(direction: Vec3, margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0, "margin must be in (0, 1]");
        StealthyAttack {
            channel: StealthyChannel::GpsLateral,
            direction: direction.normalized(),
            margin,
            bias: 0.0,
            ramp_rate: 0.8,
            max_bias: 60.0,
            active: true,
        }
    }

    /// Stealthy gyroscope roll bias, aiming at `margin` x threshold.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not in `(0, 1]`.
    pub fn gyro_roll(margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0, "margin must be in (0, 1]");
        StealthyAttack {
            channel: StealthyChannel::GyroRoll,
            direction: Vec3::unit_x(),
            margin,
            bias: 0.0,
            ramp_rate: 0.02,
            max_bias: 0.6,
            active: true,
        }
    }

    /// Current bias magnitude.
    #[inline]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Overrides the hard cap on the bias magnitude (builder style). Used
    /// by the "no protection" experiment arms, where there is no monitor
    /// to evade and the cap models what escapes casual observation.
    pub fn with_max_bias(mut self, max_bias: f64) -> Self {
        assert!(max_bias > 0.0, "max bias must be positive");
        self.max_bias = max_bias;
        self
    }

    /// Which channel is being attacked.
    #[inline]
    pub fn channel(&self) -> StealthyChannel {
        self.channel
    }

    /// Enables or disables the attack (disabled attacks decay to zero
    /// bias immediately).
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
        if !active {
            self.bias = 0.0;
        }
    }

    /// Adapts the bias given the defender's observed `statistic` and
    /// `threshold`, then returns the new magnitude.
    ///
    /// Ramps up while `statistic < margin * threshold`; backs off
    /// multiplicatively when the margin is breached, guaranteeing the
    /// monitor is never tripped by more than one step of overshoot.
    pub fn advance(&mut self, statistic: f64, threshold: f64, dt: f64) -> f64 {
        if !self.active {
            return 0.0;
        }
        let ceiling = self.margin * threshold;
        if statistic < ceiling {
            self.bias = (self.bias + self.ramp_rate * dt).min(self.max_bias);
        } else {
            // Back off hard: a stealthy attacker must not trip the alarm.
            self.bias *= 0.5;
        }
        self.bias
    }

    /// Applies the current bias to a sensor sample.
    pub fn apply(&self, r: &mut SensorReadings) {
        if !self.active || pidpiper_math::is_zero(self.bias) {
            return;
        }
        match self.channel {
            StealthyChannel::GpsLateral => {
                r.gps_position += self.direction * self.bias;
            }
            StealthyChannel::GyroRoll => {
                r.gyro.x += self.bias;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_while_headroom_remains() {
        let mut a = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
        let mut last = 0.0;
        for _ in 0..100 {
            let b = a.advance(1.0, 100.0, 0.1);
            assert!(b >= last);
            last = b;
        }
        assert!(last > 1.0, "bias should have ramped, got {last}");
    }

    #[test]
    fn backs_off_at_margin() {
        let mut a = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
        for _ in 0..200 {
            a.advance(0.0, 100.0, 0.1);
        }
        let high = a.bias();
        // Statistic now at 95 % of threshold: must back off.
        let after = a.advance(95.0, 100.0, 0.1);
        assert!(after < high);
        assert!((after - high * 0.5).abs() < 1e-12);
    }

    #[test]
    fn bias_capped() {
        let mut a = StealthyAttack::gyro_roll(0.9);
        for _ in 0..100_000 {
            a.advance(0.0, 1e9, 0.1);
        }
        assert!(a.bias() <= 0.6 + 1e-12);
    }

    #[test]
    fn applies_along_direction() {
        let mut a = StealthyAttack::gps_lateral(Vec3::new(0.0, 2.0, 0.0), 0.9);
        for _ in 0..50 {
            a.advance(0.0, 1e9, 0.1);
        }
        let mut r = SensorReadings::default();
        a.apply(&mut r);
        assert!(r.gps_position.y > 0.0);
        assert_eq!(r.gps_position.x, 0.0, "direction must be normalized to +y");
    }

    #[test]
    fn deactivation_zeroes_bias() {
        let mut a = StealthyAttack::gyro_roll(0.9);
        for _ in 0..100 {
            a.advance(0.0, 1e9, 0.1);
        }
        assert!(a.bias() > 0.0);
        a.set_active(false);
        assert_eq!(a.bias(), 0.0);
        let mut r = SensorReadings::default();
        a.apply(&mut r);
        assert_eq!(r.gyro.x, 0.0);
        assert_eq!(a.advance(0.0, 1e9, 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn invalid_margin_rejected() {
        let _ = StealthyAttack::gps_lateral(Vec3::unit_y(), 1.5);
    }

    #[test]
    fn window_monitor_allows_more_than_cusum() {
        // Demonstrates the Fig. 9 mechanism end-to-end at the statistic
        // level: the same adaptive attacker sustains a much larger bias
        // against a windowed monitor with a high threshold than against a
        // CUSUM monitor with a tight drift.
        use pidpiper_math::cusum::{Cusum, WindowedMonitor};
        let dt = 0.1;

        let mut against_window = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
        let mut window = WindowedMonitor::new(30); // 3 s window
        let window_tau = 91.0; // CI-like threshold
        for _ in 0..2000 {
            let s = window.statistic();
            let bias = against_window.advance(s, window_tau, dt);
            // Residual proportional to the injected bias.
            window.update(bias * 0.5);
        }

        let mut against_cusum = StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9);
        let mut cusum = Cusum::new(0.5);
        let cusum_tau = 18.0; // PID-Piper-like threshold
        for _ in 0..2000 {
            let s = cusum.statistic();
            let bias = against_cusum.advance(s, cusum_tau, dt);
            cusum.update(bias * 0.5);
        }

        assert!(
            against_window.bias() > 3.0 * against_cusum.bias(),
            "window {} vs cusum {}",
            against_window.bias(),
            against_cusum.bias()
        );
    }
}
