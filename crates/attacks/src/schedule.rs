//! Attack activation schedules.

/// When an attack is active during a mission timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Active from `start` (s) until the end of the mission.
    Continuous {
        /// Activation time (s).
        start: f64,
    },
    /// Active during explicit `[start, end)` windows (s).
    Windows(Vec<(f64, f64)>),
    /// Repeating bursts: active for `on` seconds, inactive for `off`
    /// seconds, starting at `start` — the paper's intermittent 3–5 s GPS
    /// spoofing bursts (Section III).
    Intermittent {
        /// First activation time (s).
        start: f64,
        /// Burst duration (s).
        on: f64,
        /// Gap between bursts (s).
        off: f64,
    },
    /// Active whenever *any* member schedule is active (set union).
    ///
    /// This is how campaign programs stack several activation patterns
    /// onto one sensor channel — e.g. a continuous low bias plus extra
    /// intermittent bursts. Members are evaluated in `Vec` order, which
    /// keeps activation queries deterministic, and because the union is
    /// commutative the *activation set* is independent of member order.
    Stacked(Vec<Schedule>),
    /// Never active (placeholder for unarmed attacks).
    Never,
}

impl Schedule {
    /// Whether the attack is active at mission time `t` (seconds).
    ///
    /// # Examples
    ///
    /// ```
    /// use pidpiper_attacks::Schedule;
    ///
    /// let s = Schedule::Intermittent { start: 10.0, on: 3.0, off: 5.0 };
    /// assert!(!s.is_active(9.9));
    /// assert!(s.is_active(11.0));
    /// assert!(!s.is_active(14.0)); // in the off gap
    /// assert!(s.is_active(18.5));  // second burst
    /// ```
    pub fn is_active(&self, t: f64) -> bool {
        match self {
            Schedule::Continuous { start } => t >= *start,
            Schedule::Windows(ws) => ws.iter().any(|&(a, b)| t >= a && t < b),
            Schedule::Intermittent { start, on, off } => {
                if t < *start {
                    return false;
                }
                let period = on + off;
                if period <= 0.0 {
                    return true;
                }
                let phase = (t - start) % period;
                phase < *on
            }
            Schedule::Stacked(members) => members.iter().any(|m| m.is_active(t)),
            Schedule::Never => false,
        }
    }

    /// The same schedule shifted `offset` seconds later (negative shifts
    /// pull it earlier; activation edges are clamped at zero).
    ///
    /// Mirrors `pidpiper_faults::FaultSchedule::shifted`: the fleet
    /// engine derives per-session attack timelines by phase-shifting one
    /// campaign template, exactly as it already does for fault schedules.
    pub fn shifted(&self, offset: f64) -> Schedule {
        match self {
            Schedule::Continuous { start } => Schedule::Continuous {
                start: (start + offset).max(0.0),
            },
            Schedule::Windows(ws) => Schedule::Windows(
                ws.iter()
                    .map(|&(a, b)| ((a + offset).max(0.0), (b + offset).max(0.0)))
                    .collect(),
            ),
            Schedule::Intermittent { start, on, off } => Schedule::Intermittent {
                start: (start + offset).max(0.0),
                on: *on,
                off: *off,
            },
            Schedule::Stacked(members) => {
                Schedule::Stacked(members.iter().map(|m| m.shifted(offset)).collect())
            }
            Schedule::Never => Schedule::Never,
        }
    }

    /// The first activation time, if the schedule ever activates.
    pub fn first_activation(&self) -> Option<f64> {
        match self {
            Schedule::Continuous { start } => Some(*start),
            Schedule::Windows(ws) => {
                pidpiper_math::float::min_of(ws.iter().map(|&(a, _)| a))
            }
            Schedule::Intermittent { start, .. } => Some(*start),
            Schedule::Stacked(members) => {
                pidpiper_math::float::min_of(members.iter().filter_map(|m| m.first_activation()))
            }
            Schedule::Never => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_from_start() {
        let s = Schedule::Continuous { start: 5.0 };
        assert!(!s.is_active(4.99));
        assert!(s.is_active(5.0));
        assert!(s.is_active(1e6));
        assert_eq!(s.first_activation(), Some(5.0));
    }

    #[test]
    fn windows_half_open() {
        let s = Schedule::Windows(vec![(1.0, 2.0), (4.0, 6.0)]);
        assert!(!s.is_active(0.5));
        assert!(s.is_active(1.0));
        assert!(!s.is_active(2.0));
        assert!(s.is_active(5.9));
        assert!(!s.is_active(6.0));
        assert_eq!(s.first_activation(), Some(1.0));
    }

    #[test]
    fn intermittent_periodicity() {
        let s = Schedule::Intermittent {
            start: 0.0,
            on: 2.0,
            off: 3.0,
        };
        for k in 0..5 {
            let base = k as f64 * 5.0;
            assert!(s.is_active(base + 0.1), "burst {k}");
            assert!(s.is_active(base + 1.9));
            assert!(!s.is_active(base + 2.1), "gap {k}");
            assert!(!s.is_active(base + 4.9));
        }
    }

    #[test]
    fn never_never_activates() {
        let s = Schedule::Never;
        assert!(!s.is_active(0.0));
        assert!(!s.is_active(1e9));
        assert_eq!(s.first_activation(), None);
    }

    #[test]
    fn stacked_is_member_union() {
        let s = Schedule::Stacked(vec![
            Schedule::Windows(vec![(1.0, 2.0)]),
            Schedule::Intermittent {
                start: 10.0,
                on: 1.0,
                off: 4.0,
            },
        ]);
        assert!(s.is_active(1.5));
        assert!(!s.is_active(3.0));
        assert!(s.is_active(10.5));
        assert!(!s.is_active(12.0));
        assert_eq!(s.first_activation(), Some(1.0));
        // Union is commutative: member order does not change activation.
        let reversed = match &s {
            Schedule::Stacked(ms) => {
                Schedule::Stacked(ms.iter().rev().cloned().collect())
            }
            _ => unreachable!(),
        };
        for step in 0..200 {
            let t = step as f64 * 0.1;
            assert_eq!(s.is_active(t), reversed.is_active(t), "t = {t}");
        }
    }

    #[test]
    fn shifted_translates_every_variant() {
        let c = Schedule::Continuous { start: 5.0 }.shifted(2.5);
        assert_eq!(c.first_activation(), Some(7.5));
        // Negative shifts clamp at the mission start.
        let clamped = Schedule::Continuous { start: 1.0 }.shifted(-4.0);
        assert_eq!(clamped.first_activation(), Some(0.0));
        let w = Schedule::Windows(vec![(1.0, 2.0)]).shifted(3.0);
        assert!(w.is_active(4.5));
        assert!(!w.is_active(1.5));
        let i = Schedule::Intermittent {
            start: 10.0,
            on: 3.0,
            off: 5.0,
        }
        .shifted(1.0);
        assert!(!i.is_active(10.5));
        assert!(i.is_active(11.5));
        let st = Schedule::Stacked(vec![Schedule::Continuous { start: 2.0 }]).shifted(1.0);
        assert_eq!(st.first_activation(), Some(3.0));
        assert_eq!(Schedule::Never.shifted(9.0), Schedule::Never);
    }
}
