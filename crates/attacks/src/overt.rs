//! Overt attacks: large scheduled bias injection into sensor streams.

use crate::schedule::Schedule;
use pidpiper_math::Vec3;
use pidpiper_sensors::SensorReadings;

/// Which sensor an attack perturbs, and by how much.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// Adds `bias` (ENU metres) to the GPS position fix.
    GpsBias(Vec3),
    /// Adds `bias` (rad/s) to the gyroscope body rates.
    GyroBias(Vec3),
    /// Adds `bias` (m/s^2, body frame) to the accelerometer.
    AccelBias(Vec3),
    /// Adds `bias` (m) to the barometric altitude.
    BaroBias(f64),
    /// Adds `bias` (rad) to the magnetometer heading.
    MagBias(f64),
}

impl AttackKind {
    /// Applies the perturbation to a sensor sample in place.
    pub fn apply(&self, r: &mut SensorReadings) {
        match *self {
            AttackKind::GpsBias(b) => r.gps_position += b,
            AttackKind::GyroBias(b) => r.gyro += b,
            AttackKind::AccelBias(b) => r.accel += b,
            AttackKind::BaroBias(b) => r.baro_altitude += b,
            AttackKind::MagBias(b) => {
                r.mag_heading = pidpiper_math::wrap_angle(r.mag_heading + b)
            }
        }
    }

    /// Human-readable sensor name.
    pub fn sensor_name(&self) -> &'static str {
        match self {
            AttackKind::GpsBias(_) => "gps",
            AttackKind::GyroBias(_) => "gyro",
            AttackKind::AccelBias(_) => "accel",
            AttackKind::BaroBias(_) => "baro",
            AttackKind::MagBias(_) => "mag",
        }
    }
}

/// A scheduled overt attack.
#[derive(Debug, Clone, PartialEq)]
pub struct Attack {
    /// What to perturb.
    pub kind: AttackKind,
    /// When to perturb it.
    pub schedule: Schedule,
}

impl Attack {
    /// Creates an attack from a kind and schedule.
    pub fn new(kind: AttackKind, schedule: Schedule) -> Self {
        Attack { kind, schedule }
    }

    /// Applies the attack to `readings` if active at time `t`.
    /// Returns `true` when the perturbation was applied.
    pub fn apply(&self, readings: &mut SensorReadings, t: f64) -> bool {
        if self.schedule.is_active(t) {
            self.kind.apply(readings);
            true
        } else {
            false
        }
    }
}

/// The paper's three overt-attack presets (Section VI-A, "Attacks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackPreset {
    /// Attack-1: gyroscope bias producing more than 20 degrees of attitude
    /// error.
    GyroOvert,
    /// Attack-2: GPS bias producing more than 20 m of position error.
    GpsOvert,
    /// Attack-3: gyroscope tampering during the vehicle's vulnerable
    /// landing phase — often crashes unprotected RVs.
    GyroAtLanding,
}

impl AttackPreset {
    /// All three presets.
    pub const ALL: [AttackPreset; 3] = [
        AttackPreset::GyroOvert,
        AttackPreset::GpsOvert,
        AttackPreset::GyroAtLanding,
    ];

    /// Instantiates the preset.
    ///
    /// - `mission_start`: when the attack bursts begin (s);
    /// - `landing_window`: the `[start, end)` of the landing phase, needed
    ///   only by [`AttackPreset::GyroAtLanding`].
    pub fn instantiate(self, mission_start: f64, landing_window: (f64, f64)) -> Attack {
        match self {
            AttackPreset::GyroOvert => Attack::new(
                // 0.7 rad/s roll-rate bias integrates to well over 20
                // degrees of attitude error within each burst.
                AttackKind::GyroBias(Vec3::new(0.7, 0.0, 0.0)),
                Schedule::Intermittent {
                    start: mission_start,
                    on: 4.0,
                    off: 6.0,
                },
            ),
            AttackPreset::GpsOvert => Attack::new(
                // 25 m lateral spoof (> 20 m position error) plus a
                // vertical component: real spoofers shift the full 3-D fix,
                // and the altitude error is what drives unprotected drones
                // into the ground.
                AttackKind::GpsBias(Vec3::new(0.0, 25.0, 14.0)),
                Schedule::Intermittent {
                    start: mission_start,
                    on: 4.0,
                    off: 6.0,
                },
            ),
            AttackPreset::GyroAtLanding => Attack::new(
                AttackKind::GyroBias(Vec3::new(0.9, 0.4, 0.0)),
                Schedule::Windows(vec![landing_window]),
            ),
        }
    }

    /// Name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            AttackPreset::GyroOvert => "gyro-overt",
            AttackPreset::GpsOvert => "gps-overt",
            AttackPreset::GyroAtLanding => "gyro-landing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_bias_applies_only_when_scheduled() {
        let attack = Attack::new(
            AttackKind::GpsBias(Vec3::new(10.0, 0.0, 0.0)),
            Schedule::Windows(vec![(5.0, 6.0)]),
        );
        let mut r = SensorReadings::default();
        assert!(!attack.apply(&mut r, 4.0));
        assert_eq!(r.gps_position.x, 0.0);
        assert!(attack.apply(&mut r, 5.5));
        assert_eq!(r.gps_position.x, 10.0);
    }

    #[test]
    fn each_kind_touches_only_its_sensor() {
        let mut r = SensorReadings::default();
        AttackKind::GyroBias(Vec3::new(0.5, 0.0, 0.0)).apply(&mut r);
        assert_eq!(r.gyro.x, 0.5);
        assert_eq!(r.gps_position, Vec3::ZERO);
        AttackKind::BaroBias(3.0).apply(&mut r);
        assert_eq!(r.baro_altitude, 3.0);
        AttackKind::MagBias(0.2).apply(&mut r);
        assert!((r.mag_heading - 0.2).abs() < 1e-12);
        AttackKind::AccelBias(Vec3::new(0.0, 1.0, 0.0)).apply(&mut r);
        assert_eq!(r.accel.y, 1.0);
    }

    #[test]
    fn mag_bias_wraps() {
        let mut r = SensorReadings {
            mag_heading: 3.0,
            ..SensorReadings::default()
        };
        AttackKind::MagBias(1.0).apply(&mut r);
        assert!(r.mag_heading <= std::f64::consts::PI);
    }

    #[test]
    fn presets_instantiate_with_correct_magnitudes() {
        let a = AttackPreset::GpsOvert.instantiate(10.0, (0.0, 0.0));
        match a.kind {
            AttackKind::GpsBias(b) => assert!(b.norm() > 20.0, "paper requires > 20 m"),
            _ => panic!("wrong kind"),
        }
        let g = AttackPreset::GyroOvert.instantiate(10.0, (0.0, 0.0));
        match g.kind {
            // 0.7 rad/s for a 4 s burst is far beyond 20 degrees.
            AttackKind::GyroBias(b) => assert!(b.norm() * 4.0 > 20.0_f64.to_radians()),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn landing_attack_respects_window() {
        let a = AttackPreset::GyroAtLanding.instantiate(0.0, (50.0, 60.0));
        let mut r = SensorReadings::default();
        assert!(!a.apply(&mut r, 30.0));
        assert!(a.apply(&mut r, 55.0));
    }
}
