//! Ramp-hold-release gain envelopes over scheduled attacks.
//!
//! A real spoofer that slams a full-strength bias into a sensor stream
//! trips CUSUM monitors within a handful of control steps. Campaign
//! programs therefore shape the bias with a trapezoidal gain envelope:
//! ramp the bias in slowly (staying under the detector's drift
//! allowance), hold it at full strength, then release it before the
//! accumulated statistic crosses the threshold. The adaptive attacker in
//! `pidpiper-campaigns` searches over exactly these three durations.

use crate::overt::AttackKind;
use crate::schedule::Schedule;
use pidpiper_sensors::SensorReadings;

impl AttackKind {
    /// The same perturbation scaled by `gain` (bias multiplied
    /// component-wise; `gain = 1.0` is the identity).
    pub fn scaled(&self, gain: f64) -> AttackKind {
        match *self {
            AttackKind::GpsBias(b) => AttackKind::GpsBias(b * gain),
            AttackKind::GyroBias(b) => AttackKind::GyroBias(b * gain),
            AttackKind::AccelBias(b) => AttackKind::AccelBias(b * gain),
            AttackKind::BaroBias(b) => AttackKind::BaroBias(b * gain),
            AttackKind::MagBias(b) => AttackKind::MagBias(b * gain),
        }
    }
}

/// A trapezoidal gain profile: linear ramp to full strength, plateau,
/// linear release back to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Seconds spent ramping from gain 0 to gain 1.
    pub ramp: f64,
    /// Seconds held at gain 1.
    pub hold: f64,
    /// Seconds spent releasing from gain 1 back to 0.
    pub release: f64,
}

impl Envelope {
    /// Creates an envelope; negative durations are clamped to zero.
    pub fn new(ramp: f64, hold: f64, release: f64) -> Self {
        Envelope {
            ramp: ramp.max(0.0),
            hold: hold.max(0.0),
            release: release.max(0.0),
        }
    }

    /// The gain at `elapsed` seconds after the envelope is triggered.
    ///
    /// Zero before the trigger and after the release completes; a
    /// zero-length ramp or release is an instantaneous step.
    ///
    /// # Examples
    ///
    /// ```
    /// use pidpiper_attacks::Envelope;
    ///
    /// let e = Envelope::new(4.0, 10.0, 2.0);
    /// assert_eq!(e.gain(-1.0), 0.0);
    /// assert_eq!(e.gain(2.0), 0.5);   // mid-ramp
    /// assert_eq!(e.gain(7.0), 1.0);   // plateau
    /// assert_eq!(e.gain(15.0), 0.5);  // mid-release
    /// assert_eq!(e.gain(20.0), 0.0);  // done
    /// ```
    pub fn gain(&self, elapsed: f64) -> f64 {
        if elapsed < 0.0 {
            return 0.0;
        }
        if elapsed < self.ramp {
            return elapsed / self.ramp;
        }
        let past_ramp = elapsed - self.ramp;
        if past_ramp < self.hold {
            return 1.0;
        }
        let past_hold = past_ramp - self.hold;
        if past_hold < self.release {
            return 1.0 - past_hold / self.release;
        }
        0.0
    }

    /// Total duration from trigger to silence.
    pub fn duration(&self) -> f64 {
        self.ramp + self.hold + self.release
    }
}

/// A scheduled attack whose bias is shaped by a gain [`Envelope`]
/// anchored at the schedule's first activation.
///
/// The schedule gates *whether* the perturbation is applied (so a
/// duty-cycled schedule still blanks the bias during its off gaps); the
/// envelope scales *how much* of the nominal bias is applied, as a
/// function of time since the attack first went live.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeAttack {
    /// The full-strength perturbation.
    pub kind: AttackKind,
    /// When the perturbation may be applied.
    pub schedule: Schedule,
    /// Gain profile relative to the schedule's first activation.
    pub envelope: Envelope,
}

impl EnvelopeAttack {
    /// Creates an enveloped attack.
    pub fn new(kind: AttackKind, schedule: Schedule, envelope: Envelope) -> Self {
        EnvelopeAttack {
            kind,
            schedule,
            envelope,
        }
    }

    /// Applies the scaled perturbation to `readings` if the schedule is
    /// active and the envelope gain is nonzero at time `t`. Returns
    /// `true` when a perturbation was applied.
    pub fn apply(&self, readings: &mut SensorReadings, t: f64) -> bool {
        if !self.schedule.is_active(t) {
            return false;
        }
        let Some(start) = self.schedule.first_activation() else {
            return false;
        };
        let gain = self.envelope.gain(t - start);
        if gain <= 0.0 {
            return false;
        }
        self.kind.scaled(gain).apply(readings);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_math::Vec3;

    #[test]
    fn gain_is_trapezoidal() {
        let e = Envelope::new(2.0, 4.0, 2.0);
        assert_eq!(e.gain(-0.1), 0.0);
        assert!((e.gain(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.gain(3.0), 1.0);
        assert!((e.gain(7.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.gain(8.0), 0.0);
        assert_eq!(e.duration(), 8.0);
    }

    #[test]
    fn zero_ramp_is_a_step() {
        let e = Envelope::new(0.0, 1.0, 0.0);
        assert_eq!(e.gain(0.0), 1.0);
        assert_eq!(e.gain(0.999), 1.0);
        assert_eq!(e.gain(1.0), 0.0);
    }

    #[test]
    fn negative_durations_clamp() {
        let e = Envelope::new(-3.0, -1.0, -2.0);
        assert_eq!(e.duration(), 0.0);
        assert_eq!(e.gain(0.0), 0.0);
    }

    #[test]
    fn scaled_kind_scales_every_variant() {
        let g = AttackKind::GpsBias(Vec3::new(10.0, 0.0, 4.0)).scaled(0.5);
        assert_eq!(g, AttackKind::GpsBias(Vec3::new(5.0, 0.0, 2.0)));
        let b = AttackKind::BaroBias(6.0).scaled(0.25);
        assert_eq!(b, AttackKind::BaroBias(1.5));
        let m = AttackKind::MagBias(0.4).scaled(0.0);
        assert_eq!(m, AttackKind::MagBias(0.0));
    }

    #[test]
    fn enveloped_attack_ramps_applied_bias() {
        let a = EnvelopeAttack::new(
            AttackKind::GpsBias(Vec3::new(10.0, 0.0, 0.0)),
            Schedule::Continuous { start: 5.0 },
            Envelope::new(4.0, 10.0, 0.0),
        );
        let mut r = SensorReadings::default();
        assert!(!a.apply(&mut r, 4.0));
        assert_eq!(r.gps_position.x, 0.0);
        assert!(a.apply(&mut r, 7.0)); // 2 s into a 4 s ramp: half gain
        assert!((r.gps_position.x - 5.0).abs() < 1e-12);
        let mut r2 = SensorReadings::default();
        assert!(a.apply(&mut r2, 12.0)); // plateau
        assert!((r2.gps_position.x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn duty_cycled_schedule_blanks_off_gaps() {
        let a = EnvelopeAttack::new(
            AttackKind::GyroBias(Vec3::new(0.4, 0.0, 0.0)),
            Schedule::Intermittent {
                start: 0.0,
                on: 2.0,
                off: 3.0,
            },
            Envelope::new(0.0, 100.0, 0.0),
        );
        let mut r = SensorReadings::default();
        assert!(a.apply(&mut r, 1.0));
        assert!(!a.apply(&mut r, 3.0)); // off gap
        assert!(a.apply(&mut r, 6.0)); // second burst
    }

    #[test]
    fn envelope_release_silences_attack() {
        let a = EnvelopeAttack::new(
            AttackKind::BaroBias(5.0),
            Schedule::Continuous { start: 0.0 },
            Envelope::new(1.0, 1.0, 1.0),
        );
        let mut r = SensorReadings::default();
        assert!(!a.apply(&mut r, 10.0)); // envelope exhausted
        assert_eq!(r.baro_altitude, 0.0);
    }
}
