//! Reimplementations of the three prior techniques the paper compares
//! against, each behind the same [`pidpiper_missions::Defense`] interface
//! as PID-Piper so every technique runs under identical missions, attacks
//! and physics.
//!
//! - **CI** (Control Invariants, Choi et al. CCS'18) — a *linear*
//!   control-invariant model derived by system identification, monitored
//!   with a fixed time window; the paper extends it with recovery by
//!   switching control to the model's own actuator estimate ([`ci`]).
//! - **Savior** (Quinonez et al. USENIX Security'20) — a *nonlinear
//!   physics* model with EKF-style state prediction and CUSUM monitoring;
//!   extended with recovery the same way ([`savior`]).
//! - **SRR** (software-sensor based recovery, Choi et al. RAID'20) — a
//!   linear state-space model driving *software sensors*; on detection the
//!   RV transitions to an emergency hold fed by the software sensors and
//!   resumes only when residuals clear ([`srr`]).
//!
//! The distinguishing behaviours the paper measures all emerge from these
//! designs: linear models mis-fit the nonlinear RV (CI/SRR accuracy,
//! Fig. 6); window-based monitors admit per-window stealthy bias (Fig. 9a);
//! Savior's CUSUM caps stealthy deviation but at a higher threshold than
//! PID-Piper's (Fig. 9b); and none of the three recovers to *mission
//! completion* like an FFC does (Table III).

#![deny(missing_docs)]

pub mod calibrate;
pub mod ci;
pub mod linear;
pub mod savior;
pub mod srr;

pub use ci::CiDefense;
pub use linear::LinearStateModel;
pub use savior::SaviorDefense;
pub use srr::SrrDefense;
