//! Savior (Quinonez et al., USENIX Security'20), with the recovery
//! extension the paper applies for a fair comparison.
//!
//! Savior builds a *nonlinear physical* model of the vehicle, propagates
//! it with an EKF and monitors the prediction residual with **CUSUM** —
//! which is why (unlike the window-based CI/SRR) it caps the deviation a
//! stealthy attacker can cause. Its model parameters come from system
//! identification against a real airframe, so they carry identification
//! error, and it does not model the RV's mode transitions — both of which
//! inflate its calibrated threshold relative to PID-Piper's (the paper
//! quotes 60°), leaving a stealthy attacker proportionally more headroom
//! (Fig. 9b).
//!
//! The extended recovery switches control to commands derived from the
//! model's open-loop state propagation; without trustworthy feedback the
//! propagated state drifts, so missions under recovery crash or stall
//! (Table III).

use crate::calibrate::calibrate_cusum_threshold;
use pidpiper_control::{ActuatorSignal, PositionController, PositionGains};
use pidpiper_math::{rad_to_deg, Cusum, Vec3};
use pidpiper_missions::{Defense, DefenseContext, MonitorLevel, Trace};
use pidpiper_sensors::EstimatedState;
use pidpiper_sim::quadcopter::{QuadParams, GRAVITY};

/// Savior configuration.
#[derive(Debug, Clone, Copy)]
pub struct SaviorConfig {
    /// Relative error of the identified physical parameters (the paper's
    /// Savior identified its model against real hardware; identification
    /// error is what separates its accuracy from a perfect model).
    pub param_error: f64,
    /// Attitude-response time constant assumed by the model (s).
    pub attitude_tau: f64,
    /// CUSUM drift quantile over benign residuals.
    pub drift_quantile: f64,
    /// Threshold safety margin.
    pub margin: f64,
    /// Consecutive quiet steps to exit recovery.
    pub resume_steps: usize,
}

impl Default for SaviorConfig {
    fn default() -> Self {
        SaviorConfig {
            param_error: 0.15,
            attitude_tau: 0.22,
            drift_quantile: 0.995,
            margin: 1.25,
            resume_steps: 150,
        }
    }
}

/// A simplified nonlinear physical model of the quadcopter: commanded
/// attitude is approached with a first-order response, thrust tilts the
/// gravity-compensated acceleration, drag opposes velocity.
#[derive(Debug, Clone, Copy)]
struct PhysicalModel {
    mass: f64,
    max_thrust: f64,
    drag: f64,
    attitude_tau: f64,
}

impl PhysicalModel {
    fn from_params(params: &QuadParams, config: &SaviorConfig) -> Self {
        // Identification error: the model believes slightly wrong physics.
        let e = 1.0 + config.param_error;
        PhysicalModel {
            mass: params.mass * e,
            max_thrust: 4.0 * params.max_motor_thrust() / e,
            drag: params.linear_drag / e,
            // The identified attitude-response constant carries the same
            // relative error (and dominates the one-step residual).
            attitude_tau: config.attitude_tau * e,
        }
    }

    /// Propagates a state one step under the flown actuator signal.
    fn propagate(&self, state: &EstimatedState, y: &ActuatorSignal, dt: f64) -> EstimatedState {
        let mut next = *state;
        // First-order attitude response towards the commanded angles.
        let blend = (dt / self.attitude_tau).min(1.0);
        next.attitude.x += blend * (y.roll - state.attitude.x);
        next.attitude.y += blend * (y.pitch - state.attitude.y);
        next.attitude.z = pidpiper_math::wrap_angle(state.attitude.z + y.yaw_rate * dt);
        next.body_rates = Vec3::new(
            (next.attitude.x - state.attitude.x) / dt,
            (next.attitude.y - state.attitude.y) / dt,
            y.yaw_rate,
        );
        // Thrust and drag.
        let thrust_n = y.thrust * self.max_thrust;
        let (sr, cr) = next.attitude.x.sin_cos();
        let (sp, cp) = next.attitude.y.sin_cos();
        let (sy, cy) = next.attitude.z.sin_cos();
        let thrust_dir = Vec3::new(cy * sp * cr + sy * sr, sy * sp * cr - cy * sr, cp * cr);
        let accel =
            thrust_dir * (thrust_n / self.mass) - Vec3::new(0.0, 0.0, GRAVITY) - next.velocity * (self.drag / self.mass);
        next.acceleration = accel;
        next.velocity += accel * dt;
        next.position += next.velocity * dt;
        next
    }
}

/// The Savior defense.
#[derive(Debug, Clone)]
pub struct SaviorDefense {
    model: PhysicalModel,
    config: SaviorConfig,
    cusum: Cusum,
    threshold: f64,
    statistic: f64,
    predicted: Option<EstimatedState>,
    recovery: bool,
    activations: usize,
    quiet_steps: usize,
    recovery_controller: PositionController,
    last_estimate: Option<EstimatedState>,
    last_flown: ActuatorSignal,
}

impl SaviorDefense {
    /// Builds Savior's physical model for an airframe and calibrates its
    /// CUSUM drift/threshold on validation traces.
    ///
    /// # Errors
    ///
    /// Returns an error when no validation residuals can be produced.
    pub fn fit(
        traces: &[Trace],
        params: &QuadParams,
        gains: PositionGains,
        config: SaviorConfig,
    ) -> Result<Self, String> {
        if traces.is_empty() {
            return Err("need at least 1 trace".into());
        }
        let model = PhysicalModel::from_params(params, &config);

        // Benign residuals: one-step physical prediction vs observed
        // estimate, per mission.
        let mut residuals = Vec::new();
        for trace in traces {
            let mut series = Vec::new();
            let records = trace.records();
            for w in records.windows(2) {
                let dt = (w[1].t - w[0].t).max(1e-4);
                let pred = model.propagate(&w[0].est, &w[0].flown_signal, dt);
                series.push(Self::residual(&pred, &w[1].est));
            }
            residuals.push(series);
        }
        let (drift, threshold) =
            calibrate_cusum_threshold(&residuals, config.drift_quantile, 0.05, config.margin);

        Ok(SaviorDefense {
            model,
            config,
            cusum: Cusum::new(drift),
            threshold,
            statistic: 0.0,
            predicted: None,
            recovery: false,
            activations: 0,
            quiet_steps: 0,
            recovery_controller: PositionController::new(gains),
            last_estimate: None,
            last_flown: ActuatorSignal::default(),
        })
    }

    /// The calibrated CUSUM threshold (degrees).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The calibrated CUSUM drift (degrees/step).
    pub fn drift(&self) -> f64 {
        self.cusum.drift()
    }

    /// Rolls the physical model forward `steps` control periods from the
    /// given state under a constant actuator signal — the horizon its
    /// CUSUM effectively integrates over. Used by the accuracy study.
    pub fn propagate_horizon(
        &self,
        start: &EstimatedState,
        flown: &ActuatorSignal,
        dt: f64,
        steps: usize,
    ) -> EstimatedState {
        let mut state = *start;
        for _ in 0..steps {
            state = self.model.propagate(&state, flown, dt);
        }
        state
    }

    /// Attitude residual in degrees with a position-consistency term.
    fn residual(pred: &EstimatedState, observed: &EstimatedState) -> f64 {
        let att = rad_to_deg(
            (pred.attitude.x - observed.attitude.x)
                .abs()
                .max((pred.attitude.y - observed.attitude.y).abs())
                .max(pidpiper_math::wrap_angle(pred.attitude.z - observed.attitude.z).abs()),
        );
        let pos = pred.position.distance(observed.position);
        att.max(2.0 * pos)
    }
}

impl Defense for SaviorDefense {
    fn name(&self) -> &str {
        "Savior"
    }

    fn observe(&mut self, ctx: &DefenseContext<'_>) -> Option<ActuatorSignal> {
        // One-step physical prediction from the previous estimate.
        let residual = match self.predicted.take() {
            Some(pred) => Self::residual(&pred, ctx.est),
            None => 0.0,
        };
        self.statistic = self.cusum.update(residual);

        if !self.recovery {
            if self.statistic > self.threshold {
                self.recovery = true;
                self.activations += 1;
                self.quiet_steps = 0;
                self.cusum.reset();
                // Seed the open-loop propagation from the last estimate.
                self.last_estimate = Some(*ctx.est);
            }
        } else if self.statistic < self.cusum.drift() * 2.0 {
            self.quiet_steps += 1;
            if self.quiet_steps >= self.config.resume_steps {
                self.recovery = false;
                self.last_estimate = None;
            }
        } else {
            self.quiet_steps = 0;
        }

        // Extended-Savior recovery: propagate the physical model open
        // loop (the sensors are suspect) and fly a PID on the propagated
        // state. Without feedback the propagation drifts. The estimate is
        // seeded when recovery activates; if that invariant ever breaks,
        // fall through to the undefended PID signal instead of panicking.
        let out = if let (true, Some(state)) = (self.recovery, self.last_estimate) {
            let propagated = self.model.propagate(&state, &self.last_flown, ctx.dt);
            self.last_estimate = Some(propagated);
            let y = self
                .recovery_controller
                .update(&propagated, ctx.target, ctx.dt);
            self.last_flown = y;
            Some(y)
        } else {
            self.last_flown = ctx.pid_signal;
            None
        };

        // Predict the next state for the next step's residual.
        self.predicted = Some(self.model.propagate(ctx.est, &self.last_flown, ctx.dt));
        out
    }

    fn sanitized_estimate(&self) -> Option<EstimatedState> {
        self.last_estimate
    }

    fn monitor_level(&self) -> MonitorLevel {
        MonitorLevel {
            statistic: self.statistic,
            threshold: self.threshold,
        }
    }

    fn in_recovery(&self) -> bool {
        self.recovery
    }

    fn recovery_activations(&self) -> usize {
        self.activations
    }

    fn reset(&mut self) {
        self.cusum.reset();
        self.statistic = 0.0;
        self.predicted = None;
        self.recovery = false;
        self.activations = 0;
        self.quiet_steps = 0;
        self.recovery_controller.reset();
        self.last_estimate = None;
        self.last_flown = ActuatorSignal::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_missions::{MissionPlan, MissionRunner, RunnerConfig};
    use pidpiper_sim::RvId;

    fn traces(n: u64) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                let runner =
                    MissionRunner::new(RunnerConfig::for_rv(RvId::Px4Solo).with_seed(850 + i));
                runner
                    .run_clean(&MissionPlan::straight_line(25.0 + 4.0 * i as f64, 5.0))
                    .trace
            })
            .collect()
    }

    fn fixture() -> SaviorDefense {
        let params = pidpiper_sim::VehicleProfile::px4_solo()
            .quad_params()
            .unwrap();
        let gains = PositionGains::for_quad(params.mass, 4.0 * params.max_motor_thrust());
        SaviorDefense::fit(&traces(3), &params, gains, SaviorConfig::default()).expect("fit")
    }

    #[test]
    fn fits_with_cusum_threshold() {
        let savior = fixture();
        assert!(savior.threshold() > 0.0 && savior.threshold().is_finite());
        assert!(savior.drift() > 0.0);
        assert_eq!(savior.name(), "Savior");
    }

    #[test]
    fn physical_model_hovers_in_place() {
        let params = QuadParams::default();
        let model = PhysicalModel::from_params(&params, &SaviorConfig { param_error: 0.0, ..Default::default() });
        let mut state = EstimatedState {
            position: Vec3::new(0.0, 0.0, 10.0),
            ..Default::default()
        };
        // Hover command for T/W = 2 is thrust 0.5.
        let hover = ActuatorSignal {
            thrust: 0.5,
            ..Default::default()
        };
        for _ in 0..200 {
            state = model.propagate(&state, &hover, 0.01);
        }
        assert!(
            (state.position.z - 10.0).abs() < 0.5,
            "hover drifted to z = {}",
            state.position.z
        );
    }

    #[test]
    fn parameter_error_inflates_residuals() {
        // The identification error is what pushes Savior's threshold above
        // PID-Piper's: a perfect-parameter model accrues less residual.
        let params = pidpiper_sim::VehicleProfile::px4_solo()
            .quad_params()
            .unwrap();
        let gains = PositionGains::for_quad(params.mass, 4.0 * params.max_motor_thrust());
        let nominal = SaviorDefense::fit(
            &traces(3),
            &params,
            gains,
            SaviorConfig::default(),
        )
        .expect("fit");
        // A grossly mis-identified attitude response (4x too fast) makes
        // the one-step predictions much worse and inflates the calibrated
        // threshold.
        let wrong = SaviorDefense::fit(
            &traces(3),
            &params,
            gains,
            SaviorConfig {
                attitude_tau: 0.05,
                ..Default::default()
            },
        )
        .expect("fit");
        assert!(
            wrong.threshold() > nominal.threshold(),
            "gross identification error must inflate the threshold: {} vs {}",
            nominal.threshold(),
            wrong.threshold()
        );
    }

    #[test]
    fn detects_gps_attack() {
        let mut savior = fixture();
        let runner = MissionRunner::new(RunnerConfig::for_rv(RvId::Px4Solo).with_seed(993));
        let attack = pidpiper_attacks::AttackPreset::GpsOvert.instantiate(8.0, (0.0, 0.0));
        let result = runner.run(
            &MissionPlan::straight_line(40.0, 5.0),
            &mut savior,
            vec![pidpiper_missions::MissionAttack::Scheduled(attack)],
        );
        assert!(
            result.recovery_activations > 0,
            "Savior must detect a 25 m GPS spoof"
        );
    }
}
