//! CI — Control Invariants (Choi et al., CCS'18), with the recovery
//! extension the paper applies for a fair comparison.
//!
//! CI derives a *linear* control-invariant model of the vehicle by system
//! identification and monitors the error between the model's estimate and
//! the observed behaviour over a fixed **time window** (the paper quotes a
//! 3-second window with a 91° threshold — the large threshold being the
//! price of a linear model on a nonlinear vehicle). On detection, the
//! extended-CI recovery switches control to the model's own actuator
//! estimate, also produced by a linear regression — which cannot steer the
//! vehicle to mission completion, producing Table III's 0 % success and
//! ~80 % crash/stall.

use crate::calibrate::calibrate_window_threshold;
use crate::linear::{input_vector, state_vector, LinearStateModel, INPUT_DIM, STATE_DIM};
use pidpiper_control::ActuatorSignal;
use pidpiper_math::cusum::WindowedMonitor;
use pidpiper_math::Matrix;
use pidpiper_missions::{Defense, DefenseContext, MonitorLevel, Trace};

/// CI configuration.
#[derive(Debug, Clone, Copy)]
pub struct CiConfig {
    /// Monitoring window length in control steps (the paper's CI uses a
    /// 3 s window).
    pub window: usize,
    /// Sampling decimation for the linear models.
    pub decimate: usize,
    /// Threshold safety margin.
    pub margin: f64,
}

impl Default for CiConfig {
    fn default() -> Self {
        CiConfig {
            window: 300,
            decimate: 5,
            margin: 1.2,
        }
    }
}

/// The CI defense.
#[derive(Debug, Clone)]
pub struct CiDefense {
    /// Linear actuator-estimate model: `y = L [x; u; 1]`.
    y_model: Matrix,
    state_model: LinearStateModel,
    monitor: WindowedMonitor,
    threshold: f64,
    window: usize,
    statistic: f64,
    recovery: bool,
    activations: usize,
    quiet_steps: usize,
}

fn regressor(x: &[f64; STATE_DIM], u: &[f64; INPUT_DIM]) -> Vec<f64> {
    let mut reg = Vec::with_capacity(STATE_DIM + INPUT_DIM + 1);
    reg.extend_from_slice(x);
    reg.extend_from_slice(u);
    reg.push(1.0);
    reg
}

impl CiDefense {
    /// Fits CI's models on training traces and calibrates its window
    /// threshold on validation traces (80/20 split of `traces`).
    ///
    /// # Errors
    ///
    /// Returns an error if system identification fails.
    pub fn fit(traces: &[Trace], config: CiConfig) -> Result<Self, String> {
        if traces.len() < 2 {
            return Err("need at least 2 traces".into());
        }
        let n_train = ((traces.len() as f64) * 0.8).round() as usize;
        let n_train = n_train.clamp(1, traces.len() - 1);
        let (train, val) = traces.split_at(n_train);

        let state_model = LinearStateModel::fit(train, config.decimate)?;

        // Linear actuator model by least squares on the same regressors.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for trace in train {
            for r in trace.records().iter().step_by(config.decimate) {
                rows.push(regressor(&state_vector(&r.est), &input_vector(&r.target)));
                ys.push(r.pid_signal.to_array().to_vec());
            }
        }
        let y_model = crate::linear::ridge_solve(&rows, &ys, 1e-4)
            .map_err(|e| format!("actuator regression failed: {e}"))?;

        // Calibrate the windowed threshold on validation residuals.
        let mut residuals = Vec::new();
        for trace in val {
            let mut series = Vec::new();
            for r in trace.records() {
                let pred = Self::predict_signal(&y_model, &r.est, &r.target);
                series.push(Self::residual(&pred, &r.pid_signal));
            }
            residuals.push(series);
        }
        let threshold = calibrate_window_threshold(&residuals, config.window, config.margin);

        Ok(CiDefense {
            y_model,
            state_model,
            monitor: WindowedMonitor::new(config.window),
            threshold,
            window: config.window,
            statistic: 0.0,
            recovery: false,
            activations: 0,
            quiet_steps: 0,
        })
    }

    /// The calibrated window threshold (degrees accumulated per window).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn predict_signal(
        y_model: &Matrix,
        est: &pidpiper_sensors::EstimatedState,
        target: &pidpiper_control::TargetState,
    ) -> ActuatorSignal {
        let reg = regressor(&state_vector(est), &input_vector(target));
        // Shapes are fixed at fit time; a neutral signal is the safe
        // deterministic fallback if that invariant ever breaks.
        match y_model.matvec(&reg) {
            Ok(y) => ActuatorSignal::from_array([y[0], y[1], y[2], y[3]]),
            Err(_) => ActuatorSignal::default(),
        }
    }

    fn residual(pred: &ActuatorSignal, pid: &ActuatorSignal) -> f64 {
        let r = pred.residual_deg(pid);
        pidpiper_math::fmax(pidpiper_math::fmax(r[0], r[1]), r[2])
    }

    /// Internal accessor for the state model (used by tests).
    pub fn state_model(&self) -> &LinearStateModel {
        &self.state_model
    }
}

impl Defense for CiDefense {
    fn name(&self) -> &str {
        "CI"
    }

    fn observe(&mut self, ctx: &DefenseContext<'_>) -> Option<ActuatorSignal> {
        let pred = Self::predict_signal(&self.y_model, ctx.est, ctx.target);
        let residual = Self::residual(&pred, &ctx.pid_signal);
        self.statistic = self.monitor.update(residual);

        if !self.recovery {
            if self.statistic > self.threshold {
                self.recovery = true;
                self.activations += 1;
                self.quiet_steps = 0;
                self.monitor.reset();
            }
        } else {
            // Naive exit: the windowed statistic has drained.
            if self.statistic < 0.25 * self.threshold {
                self.quiet_steps += 1;
                if self.quiet_steps > self.window {
                    self.recovery = false;
                }
            } else {
                self.quiet_steps = 0;
            }
        }

        if self.recovery {
            // Extended-CI recovery: fly the linear model's own actuator
            // estimate (open loop with respect to the true state).
            Some(pred)
        } else {
            None
        }
    }

    fn monitor_level(&self) -> MonitorLevel {
        MonitorLevel {
            statistic: self.statistic,
            threshold: self.threshold,
        }
    }

    fn in_recovery(&self) -> bool {
        self.recovery
    }

    fn recovery_activations(&self) -> usize {
        self.activations
    }

    fn reset(&mut self) {
        self.monitor.reset();
        self.statistic = 0.0;
        self.recovery = false;
        self.activations = 0;
        self.quiet_steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_missions::{MissionPlan, MissionRunner, NoDefense, RunnerConfig};
    use pidpiper_sim::RvId;

    fn traces(n: u64) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                let runner =
                    MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(700 + i));
                runner
                    .run_clean(&MissionPlan::straight_line(25.0 + 4.0 * i as f64, 5.0))
                    .trace
            })
            .collect()
    }

    #[test]
    fn fits_with_positive_threshold() {
        let ci = CiDefense::fit(&traces(4), CiConfig::default()).expect("fit");
        assert!(ci.threshold() > 0.0 && ci.threshold().is_finite());
        assert_eq!(ci.name(), "CI");
    }

    #[test]
    fn silent_on_clean_mission() {
        let mut ci = CiDefense::fit(&traces(4), CiConfig::default()).expect("fit");
        let runner = MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(990));
        let result = runner.run(
            &MissionPlan::straight_line(30.0, 5.0),
            &mut ci,
            Vec::new(),
        );
        // CI may fire gratuitously on unseen missions (its FPR in the
        // paper is 23 %), but a mission close to the training data should
        // normally pass.
        assert!(
            result.outcome.is_success() || result.recovery_activations > 0,
            "unexpected failure without recovery: {:?}",
            result.outcome
        );
    }

    #[test]
    fn detects_overt_gps_attack() {
        let mut ci = CiDefense::fit(&traces(4), CiConfig::default()).expect("fit");
        let runner = MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(991));
        let attack = pidpiper_attacks::AttackPreset::GpsOvert.instantiate(8.0, (0.0, 0.0));
        let result = runner.run(
            &MissionPlan::straight_line(40.0, 5.0),
            &mut ci,
            vec![pidpiper_missions::MissionAttack::Scheduled(attack)],
        );
        assert!(
            result.recovery_activations > 0,
            "CI must detect a 25 m GPS spoof"
        );
        // And per the paper, extended-CI recovery does not complete
        // missions.
        let _ = result.outcome;
        let _ = NoDefense::new();
    }
}
