//! Linear state-space system identification — the modelling substrate of
//! the CI and SRR baselines.
//!
//! Fits a discrete model `x(t+1) = A x(t) + B u(t) + c` by ordinary least
//! squares over mission traces, with state
//! `x = [position(3), velocity(3), attitude(3)]` and input
//! `u = [target position(3), target yaw(1)]`. The paper built SRR's model
//! with MATLAB's system-identification toolbox; least-squares fitting of
//! the same structure is the equivalent here.
//!
//! The model is *linear by design* — that limitation (RVs are nonlinear
//! systems) is precisely what the paper's accuracy comparison measures, so
//! no effort is made to enrich it.

use pidpiper_math::{Matrix, Vec3};
use pidpiper_missions::Trace;
use pidpiper_sensors::EstimatedState;

/// Ridge-regularized multi-output least squares: appends `sqrt(lambda) * I`
/// rows so constant or collinear regressor columns (straight-line missions
/// hold most target channels fixed) cannot make the normal equations
/// singular.
pub(crate) fn ridge_solve(
    rows: &[Vec<f64>],
    targets: &[Vec<f64>],
    lambda: f64,
) -> Result<Matrix, String> {
    assert_eq!(rows.len(), targets.len(), "rows/targets mismatch");
    assert!(!rows.is_empty(), "empty regression");
    let k = rows[0].len();
    let m = targets[0].len();
    let mut design_rows = rows.to_vec();
    let mut target_rows = targets.to_vec();
    let sqrt_l = lambda.sqrt();
    for i in 0..k {
        let mut reg_row = vec![0.0; k];
        reg_row[i] = sqrt_l;
        design_rows.push(reg_row);
        target_rows.push(vec![0.0; m]);
    }
    let design = Matrix::from_rows(&design_rows);
    let target_mat = Matrix::from_rows(&target_rows);
    design
        .solve_least_squares_multi(&target_mat)
        .map(|t| t.transpose())
        .map_err(|e| format!("regression failed: {e}"))
}

/// State dimension (position, velocity, attitude).
pub const STATE_DIM: usize = 9;
/// Input dimension (target position, target yaw).
pub const INPUT_DIM: usize = 4;

/// A fitted discrete linear state-space model.
#[derive(Debug, Clone)]
pub struct LinearStateModel {
    /// Combined regressor matrix mapping `[x; u; 1]` to `x(t+1)`
    /// (`STATE_DIM x (STATE_DIM + INPUT_DIM + 1)`).
    theta: Matrix,
    /// Prediction step (control steps between samples).
    pub decimate: usize,
}

/// Extracts the model's state vector from an estimate.
pub fn state_vector(est: &EstimatedState) -> [f64; STATE_DIM] {
    [
        est.position.x,
        est.position.y,
        est.position.z,
        est.velocity.x,
        est.velocity.y,
        est.velocity.z,
        est.attitude.x,
        est.attitude.y,
        est.attitude.z,
    ]
}

/// Extracts the model's input vector from a target.
pub fn input_vector(target: &pidpiper_control::TargetState) -> [f64; INPUT_DIM] {
    [
        target.position.x,
        target.position.y,
        target.position.z,
        target.yaw,
    ]
}

/// Extracts the actuator-signal input vector from a trace record — the
/// input set the real SRR's system identification uses (controller +
/// actuator + vehicle dynamics).
pub fn actuator_vector(y: &pidpiper_control::ActuatorSignal) -> [f64; INPUT_DIM] {
    y.to_array()
}

impl LinearStateModel {
    /// Fits the model with target-state inputs (CI's invariant form).
    ///
    /// # Errors
    ///
    /// Returns an error string when the traces provide too few samples or
    /// the regression is singular.
    pub fn fit(traces: &[Trace], decimate: usize) -> Result<Self, String> {
        Self::fit_io(traces, decimate, |r| input_vector(&r.target))
    }

    /// Fits the model with actuator-signal inputs (SRR's software-sensor
    /// form: the state propagates from the commands actually flown).
    ///
    /// # Errors
    ///
    /// Returns an error string when the traces provide too few samples or
    /// the regression is singular.
    pub fn fit_actuator(traces: &[Trace], decimate: usize) -> Result<Self, String> {
        Self::fit_io(traces, decimate, |r| actuator_vector(&r.flown_signal))
    }

    /// Fits the model with a caller-supplied input extractor.
    ///
    /// # Errors
    ///
    /// Returns an error string when the traces provide too few samples or
    /// the regression is singular.
    pub fn fit_io<F>(traces: &[Trace], decimate: usize, input_of: F) -> Result<Self, String>
    where
        F: Fn(&pidpiper_missions::TraceRecord) -> [f64; INPUT_DIM],
    {
        assert!(decimate > 0, "decimate must be positive");
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<Vec<f64>> = Vec::new();
        for trace in traces {
            let records = trace.records();
            let mut i = 0;
            while i + decimate < records.len() {
                let now = &records[i];
                let next = &records[i + decimate];
                let x = state_vector(&now.est);
                let u = input_of(now);
                let mut row = Vec::with_capacity(STATE_DIM + INPUT_DIM + 1);
                row.extend_from_slice(&x);
                row.extend_from_slice(&u);
                row.push(1.0);
                rows.push(row);
                targets.push(state_vector(&next.est).to_vec());
                i += decimate;
            }
        }
        if rows.len() < 4 * (STATE_DIM + INPUT_DIM + 1) {
            return Err(format!(
                "insufficient samples for system identification: {}",
                rows.len()
            ));
        }
        let theta = ridge_solve(&rows, &targets, 1e-4)
            .map_err(|e| format!("system identification failed: {e}"))?;
        Ok(LinearStateModel { theta, decimate })
    }

    /// One-step prediction of the next (decimated) state.
    pub fn predict(&self, x: &[f64; STATE_DIM], u: &[f64; INPUT_DIM]) -> [f64; STATE_DIM] {
        let mut reg = Vec::with_capacity(STATE_DIM + INPUT_DIM + 1);
        reg.extend_from_slice(x);
        reg.extend_from_slice(u);
        reg.push(1.0);
        // Shapes are fixed at fit time; if that invariant ever breaks,
        // predicting "state unchanged" is the safe deterministic fallback.
        match self.theta.matvec(&reg) {
            Ok(out) => {
                let mut arr = [0.0; STATE_DIM];
                arr.copy_from_slice(&out);
                arr
            }
            Err(_) => *x,
        }
    }

    /// Converts a predicted state vector back into an [`EstimatedState`]
    /// (variance and acceleration carried over from `base`).
    pub fn to_estimate(x: &[f64; STATE_DIM], base: &EstimatedState) -> EstimatedState {
        EstimatedState {
            position: Vec3::new(x[0], x[1], x[2]),
            velocity: Vec3::new(x[3], x[4], x[5]),
            attitude: Vec3::new(x[6], x[7], x[8]),
            body_rates: base.body_rates,
            position_variance: base.position_variance,
            acceleration: base.acceleration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_missions::{MissionPlan, MissionRunner, RunnerConfig};
    use pidpiper_sim::RvId;

    fn traces() -> Vec<Trace> {
        (0..3)
            .map(|i| {
                let runner = MissionRunner::new(
                    RunnerConfig::for_rv(RvId::ArduCopter).with_seed(300 + i),
                );
                runner
                    .run_clean(&MissionPlan::straight_line(25.0 + 5.0 * i as f64, 5.0))
                    .trace
            })
            .collect()
    }

    #[test]
    fn fits_and_predicts_smoothly() {
        let ts = traces();
        let model = LinearStateModel::fit(&ts, 5).expect("fit");
        // One-step predictions on training data should be close (linear
        // models track short horizons reasonably).
        let records = ts[0].records();
        let mut total_err = 0.0;
        let mut n = 0;
        let mut i = 400;
        while i + 5 < records.len() {
            let x = state_vector(&records[i].est);
            let u = input_vector(&records[i].target);
            let pred = model.predict(&x, &u);
            let actual = state_vector(&records[i + 5].est);
            let err: f64 = pred
                .iter()
                .zip(&actual)
                .take(3)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            total_err += err;
            n += 1;
            i += 50;
        }
        let mean_err = total_err / n as f64;
        assert!(
            mean_err < 1.0,
            "one-step position prediction error {mean_err} m too large"
        );
    }

    #[test]
    fn iterated_prediction_drifts_more_than_one_step() {
        // The paper's point: a linear model of a nonlinear RV degrades when
        // rolled forward.
        let ts = traces();
        let model = LinearStateModel::fit(&ts, 5).expect("fit");
        let records = ts[0].records();
        let start = 600;
        let mut x = state_vector(&records[start].est);
        for k in 0..20 {
            let u = input_vector(&records[start + k * 5].target);
            x = model.predict(&x, &u);
        }
        let actual = state_vector(&records[start + 100].est);
        let one_step = {
            let x0 = state_vector(&records[start + 95].est);
            let u = input_vector(&records[start + 95].target);
            let p = model.predict(&x0, &u);
            (p[0] - actual[0]).hypot(p[1] - actual[1])
        };
        let rolled = (x[0] - actual[0]).hypot(x[1] - actual[1]);
        assert!(
            rolled > one_step,
            "rolled-forward error {rolled} should exceed one-step {one_step}"
        );
    }

    #[test]
    fn insufficient_data_rejected() {
        let result = LinearStateModel::fit(&[], 5);
        assert!(result.is_err());
    }

    #[test]
    fn state_vector_round_trip() {
        let est = EstimatedState {
            position: Vec3::new(1.0, 2.0, 3.0),
            velocity: Vec3::new(0.1, 0.2, 0.3),
            attitude: Vec3::new(0.01, 0.02, 0.03),
            ..EstimatedState::default()
        };
        let x = state_vector(&est);
        let back = LinearStateModel::to_estimate(&x, &est);
        assert_eq!(back.position, est.position);
        assert_eq!(back.velocity, est.velocity);
        assert_eq!(back.attitude, est.attitude);
    }
}
