//! SRR — software-sensor based recovery (Choi et al., RAID'20).
//!
//! SRR identifies a linear state-space model of the RV and runs *software
//! sensors* — programs that emulate the real sensors by evaluating the
//! model. A recovery monitor tracks the difference between real and
//! software sensors over a fixed time window (the paper quotes a 1 s
//! window with a 22° threshold). On detection, the RV switches to the
//! software sensors and enters an **emergency hold**: it stops pursuing
//! waypoints and station-keeps, resuming only when the residual clears —
//! which is why the paper observes SRR needs manual intervention to finish
//! missions (13 % success) and why its linear model leaves it exposed to
//! stealthy attacks.

use crate::calibrate::calibrate_window_threshold;
use crate::linear::{state_vector, LinearStateModel, STATE_DIM};
use pidpiper_control::{ActuatorSignal, PositionController, PositionGains, TargetState};
use pidpiper_math::cusum::WindowedMonitor;
use pidpiper_math::{rad_to_deg, Vec3};
use pidpiper_missions::{Defense, DefenseContext, MonitorLevel, Trace};
use pidpiper_sensors::EstimatedState;

/// SRR configuration.
#[derive(Debug, Clone, Copy)]
pub struct SrrConfig {
    /// Monitoring window in control steps (the paper's SRR uses 1 s).
    pub window: usize,
    /// Sampling decimation of the linear model.
    pub decimate: usize,
    /// Threshold safety margin.
    pub margin: f64,
    /// Consecutive quiet steps required to leave the emergency hold early.
    pub resume_steps: usize,
    /// Maximum hold duration in control steps — the paper: SRR "prevents
    /// crashes by transitioning the RV to an emergency state for a short
    /// time"; after this the software sensors re-anchor and the mission
    /// resumes (re-detecting immediately if the attack persists).
    pub max_hold_steps: usize,
}

impl Default for SrrConfig {
    fn default() -> Self {
        SrrConfig {
            window: 100,
            decimate: 5,
            margin: 1.2,
            resume_steps: 150,
            max_hold_steps: 600,
        }
    }
}

/// The SRR defense.
#[derive(Debug, Clone)]
pub struct SrrDefense {
    model: LinearStateModel,
    config: SrrConfig,
    monitor: WindowedMonitor,
    threshold: f64,
    statistic: f64,
    /// Software-sensor state (model-propagated between detections).
    software_state: Option<[f64; STATE_DIM]>,
    step: usize,
    recovery: bool,
    activations: usize,
    quiet_steps: usize,
    hold_steps: usize,
    hold_position: Option<Vec3>,
    hold_controller: PositionController,
    last_estimate: Option<EstimatedState>,
    last_flown: ActuatorSignal,
}

impl SrrDefense {
    /// Fits the SRR model on training traces and calibrates its windowed
    /// threshold on the validation split.
    ///
    /// `gains` are the vehicle's position-controller gains, used by the
    /// emergency-hold controller.
    ///
    /// # Errors
    ///
    /// Returns an error if system identification fails.
    pub fn fit(traces: &[Trace], config: SrrConfig, gains: PositionGains) -> Result<Self, String> {
        if traces.len() < 2 {
            return Err("need at least 2 traces".into());
        }
        let n_train = (((traces.len() as f64) * 0.8).round() as usize).clamp(1, traces.len() - 1);
        let (train, val) = traces.split_at(n_train);
        // Actuator-driven system identification: the paper's SRR models
        // controller + actuators + vehicle dynamics, so the state
        // propagates from the commands actually flown.
        let model = LinearStateModel::fit_actuator(train, config.decimate)?;

        // Validation residuals: software-sensor prediction vs observed
        // state, attitude channels in degrees.
        let mut residuals = Vec::new();
        for trace in val {
            let mut series = Vec::new();
            let records = trace.records();
            let mut i = 0;
            while i + config.decimate < records.len() {
                let x = state_vector(&records[i].est);
                let u = crate::linear::actuator_vector(&records[i].flown_signal);
                let pred = model.predict(&x, &u);
                let actual = state_vector(&records[i + config.decimate].est);
                series.push(Self::state_residual(&pred, &actual));
                i += config.decimate;
            }
            residuals.push(series);
        }
        // The monitor runs at the decimated rate; its window shortens
        // accordingly.
        let window = (config.window / config.decimate).max(2);
        let threshold = calibrate_window_threshold(&residuals, window, config.margin);

        Ok(SrrDefense {
            model,
            config,
            monitor: WindowedMonitor::new(window),
            threshold,
            statistic: 0.0,
            software_state: None,
            step: 0,
            recovery: false,
            activations: 0,
            quiet_steps: 0,
            hold_steps: 0,
            hold_position: None,
            hold_controller: PositionController::new(gains),
            last_estimate: None,
            last_flown: ActuatorSignal::default(),
        })
    }

    /// The calibrated window threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Attitude-dominated residual between a predicted and observed state
    /// (degrees), with a position term so GPS attacks register too.
    fn state_residual(pred: &[f64; STATE_DIM], actual: &[f64; STATE_DIM]) -> f64 {
        let att = rad_to_deg(
            (pred[6] - actual[6])
                .abs()
                .max((pred[7] - actual[7]).abs())
                .max((pred[8] - actual[8]).abs()),
        );
        let pos = ((pred[0] - actual[0]).powi(2)
            + (pred[1] - actual[1]).powi(2)
            + (pred[2] - actual[2]).powi(2))
        .sqrt();
        // 1 m of unexplained position error weighs like 2 degrees.
        att.max(2.0 * pos)
    }
}

impl Defense for SrrDefense {
    fn name(&self) -> &str {
        "SRR"
    }

    fn observe(&mut self, ctx: &DefenseContext<'_>) -> Option<ActuatorSignal> {
        // Software sensors: one-step model prediction from the previous
        // (decimated) state; during recovery the model propagates itself.
        if self.step.is_multiple_of(self.config.decimate) {
            // The software sensors propagate from the commands actually
            // flown (SRR identifies controller + actuators + dynamics).
            let u = crate::linear::actuator_vector(&self.last_flown);
            let observed = state_vector(ctx.est);
            let predicted = match self.software_state {
                Some(prev) => self.model.predict(&prev, &u),
                None => observed,
            };
            let residual = Self::state_residual(&predicted, &observed);
            self.statistic = self.monitor.update(residual);

            // Outside recovery the software sensors re-anchor on the real
            // sensors each sample; during recovery they free-run on the
            // model — the real sensors are suspect.
            self.software_state = Some(if self.recovery { predicted } else { observed });

            if !self.recovery {
                if self.statistic > self.threshold {
                    self.recovery = true;
                    self.activations += 1;
                    self.quiet_steps = 0;
                    self.hold_steps = 0;
                    self.monitor.reset();
                    // Enter the emergency hold at the software-sensor
                    // position.
                    self.hold_position = Some(Vec3::new(predicted[0], predicted[1], predicted[2]));
                    self.hold_controller.reset();
                }
            } else {
                if self.statistic < self.threshold {
                    self.quiet_steps += self.config.decimate;
                } else {
                    self.quiet_steps = 0;
                }
                // Resume when residuals clear, or unconditionally when the
                // short emergency hold expires (re-anchoring the software
                // sensors; a persisting attack re-triggers immediately).
                if self.quiet_steps >= self.config.resume_steps
                    || self.hold_steps >= self.config.max_hold_steps
                {
                    self.recovery = false;
                    self.hold_position = None;
                    self.software_state = Some(observed);
                    self.monitor.reset();
                }
            }
        }
        self.step += 1;
        if self.recovery {
            self.hold_steps += 1;
        }

        // Both recovery anchors are set on detection; if that invariant
        // ever breaks, fall through to the undefended PID signal instead
        // of panicking mid-mission.
        let anchors = (|| {
            if self.recovery {
                Some((self.software_state?, self.hold_position?))
            } else {
                None
            }
        })();
        if let Some((mut state, hold)) = anchors {
            // Emergency hold: station-keep at the software-sensor position.
            // The software sensors replace the suspect position channels;
            // the barometer and the inertial attitude solution remain real
            // (SRR swaps out individual sensors, not the whole stack) —
            // which keeps the hold's altitude honest but leaves gyroscope
            // attacks as its weak spot.
            state[2] = ctx.readings.baro_altitude;
            self.software_state = Some(state);
            let mut est = LinearStateModel::to_estimate(&state, ctx.est);
            est.velocity.z = ctx.est.velocity.z;
            est.attitude = ctx.est.attitude;
            est.body_rates = ctx.est.body_rates;
            self.last_estimate = Some(est);
            let target = TargetState::hover_at(hold, ctx.target.yaw);
            let y = self.hold_controller.update(&est, &target, ctx.dt);
            self.last_flown = y;
            Some(y)
        } else {
            self.last_estimate = None;
            self.last_flown = ctx.pid_signal;
            None
        }
    }

    fn sanitized_estimate(&self) -> Option<EstimatedState> {
        // During recovery the inner loops consume the software sensors.
        self.last_estimate
    }

    fn monitor_level(&self) -> MonitorLevel {
        MonitorLevel {
            statistic: self.statistic,
            threshold: self.threshold,
        }
    }

    fn in_recovery(&self) -> bool {
        self.recovery
    }

    fn recovery_activations(&self) -> usize {
        self.activations
    }

    fn reset(&mut self) {
        self.monitor.reset();
        self.statistic = 0.0;
        self.software_state = None;
        self.step = 0;
        self.recovery = false;
        self.activations = 0;
        self.quiet_steps = 0;
        self.hold_steps = 0;
        self.hold_position = None;
        self.hold_controller.reset();
        self.last_estimate = None;
        self.last_flown = ActuatorSignal::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_missions::{MissionPlan, MissionRunner, RunnerConfig};
    use pidpiper_sim::quadcopter::QuadParams;
    use pidpiper_sim::RvId;

    fn traces(n: u64) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                let runner =
                    MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(800 + i));
                runner
                    .run_clean(&MissionPlan::straight_line(25.0 + 4.0 * i as f64, 5.0))
                    .trace
            })
            .collect()
    }

    fn gains() -> PositionGains {
        let p = QuadParams::default();
        PositionGains::for_quad(p.mass, 4.0 * p.max_motor_thrust())
    }

    #[test]
    fn fits_with_positive_threshold() {
        let srr = SrrDefense::fit(&traces(4), SrrConfig::default(), gains()).expect("fit");
        assert!(srr.threshold() > 0.0 && srr.threshold().is_finite());
        assert_eq!(srr.name(), "SRR");
    }

    #[test]
    fn detects_gps_attack_and_holds() {
        let mut srr = SrrDefense::fit(&traces(4), SrrConfig::default(), gains()).expect("fit");
        let runner = MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(992));
        let attack = pidpiper_attacks::AttackPreset::GpsOvert.instantiate(8.0, (0.0, 0.0));
        let result = runner.run(
            &MissionPlan::straight_line(50.0, 5.0),
            &mut srr,
            vec![pidpiper_missions::MissionAttack::Scheduled(attack)],
        );
        assert!(result.recovery_activations > 0, "SRR must detect the spoof");
        assert!(result.recovery_steps > 0, "SRR must enter the hold");
    }

    #[test]
    fn gratuitous_hold_can_still_resume() {
        // SRR's resume path: after a detection with no ongoing attack the
        // residual drains and the mission continues (the paper's Table II
        // gives SRR a 50 % gratuitous-recovery success rate).
        let mut srr = SrrDefense::fit(&traces(4), SrrConfig::default(), gains()).expect("fit");
        srr.recovery = true;
        srr.hold_position = Some(Vec3::new(0.0, 0.0, 5.0));
        srr.software_state = Some([0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Feed quiet residuals long enough to resume.
        let est = EstimatedState {
            position: Vec3::new(0.0, 0.0, 5.0),
            ..Default::default()
        };
        let readings = pidpiper_sensors::SensorReadings::default();
        let target = TargetState::hover_at(Vec3::new(10.0, 0.0, 5.0), 0.0);
        for i in 0..2000 {
            let ctx = DefenseContext {
                t: i as f64 * 0.01,
                dt: 0.01,
                est: &est,
                readings: &readings,
                target: &target,
                pid_signal: ActuatorSignal::default(),
                phase: pidpiper_missions::FlightPhase::Cruise { wp_index: 0 },
            };
            srr.observe(&ctx);
            if !srr.in_recovery() {
                break;
            }
        }
        assert!(!srr.in_recovery(), "SRR should resume after residuals clear");
    }

    #[test]
    fn health_state_mirrors_recovery_and_never_degrades() {
        // The baselines have no supervisor of their own: the trait's
        // default `health_state` maps recovery directly and can never
        // report `Degraded`.
        use pidpiper_missions::HealthState;
        let mut srr = SrrDefense::fit(&traces(4), SrrConfig::default(), gains()).expect("fit");
        assert_eq!(srr.health_state(), HealthState::Nominal);
        srr.recovery = true;
        srr.hold_position = Some(Vec3::new(0.0, 0.0, 5.0));
        assert_eq!(srr.health_state(), HealthState::Recovery);
        assert!(!srr.health_state().is_degraded());
        srr.reset();
        assert_eq!(srr.health_state(), HealthState::Nominal);
    }
}
