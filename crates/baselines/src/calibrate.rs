//! Shared threshold calibration for the baseline monitors.
//!
//! Each baseline replays its own residual stream over attack-free
//! validation missions and sets its threshold to the largest statistic
//! observed, inflated by a safety margin — the same empirical procedure
//! every technique in this space uses. Because the baselines' models are
//! less accurate than PID-Piper's, their calibrated thresholds come out
//! much higher (the paper quotes 91° for CI's 3 s window, 22° for SRR's
//! 1 s window and 60° for Savior's CUSUM), which is exactly what stealthy
//! attacks exploit.

use pidpiper_math::cusum::WindowedMonitor;
use pidpiper_math::Cusum;

/// Calibrates a windowed monitor's threshold: the maximum windowed sum of
/// residuals observed across validation missions, times `margin`.
///
/// # Panics
///
/// Panics if `window` is zero or no residuals are supplied.
pub fn calibrate_window_threshold(
    residuals_per_mission: &[Vec<f64>],
    window: usize,
    margin: f64,
) -> f64 {
    assert!(window > 0, "window must be positive");
    assert!(margin >= 1.0, "margin must be >= 1");
    let mut worst: f64 = 0.0;
    let mut any = false;
    for mission in residuals_per_mission {
        let mut monitor = WindowedMonitor::new(window);
        for &r in mission {
            any = true;
            worst = worst.max(monitor.update(r));
        }
    }
    assert!(any, "no residuals supplied for calibration");
    worst * margin
}

/// Calibrates a CUSUM monitor: drift from the benign residual quantile,
/// threshold from the replayed maximum statistic times `margin`.
///
/// Returns `(drift, threshold)`.
///
/// # Panics
///
/// Panics if no residuals are supplied or parameters are out of range.
pub fn calibrate_cusum_threshold(
    residuals_per_mission: &[Vec<f64>],
    drift_quantile: f64,
    min_drift: f64,
    margin: f64,
) -> (f64, f64) {
    assert!(
        (0.5..1.0).contains(&drift_quantile),
        "quantile must be in [0.5, 1)"
    );
    assert!(min_drift > 0.0 && margin >= 1.0, "bad parameters");
    let pooled: Vec<f64> = residuals_per_mission.iter().flatten().copied().collect();
    assert!(!pooled.is_empty(), "no residuals supplied for calibration");
    let drift = pidpiper_math::stats::quantile(&pooled, drift_quantile).max(min_drift);
    let mut worst: f64 = 0.0;
    for mission in residuals_per_mission {
        let mut cusum = Cusum::new(drift);
        for &r in mission {
            worst = worst.max(cusum.update(r));
        }
    }
    (drift, (worst * margin).max(8.0 * drift))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn benign(seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    #[test]
    fn window_threshold_covers_benign_replay() {
        let missions: Vec<Vec<f64>> = (0..3).map(benign).collect();
        let tau = calibrate_window_threshold(&missions, 100, 1.2);
        // Re-replaying any benign mission stays under tau.
        let mut m = WindowedMonitor::new(100);
        let max = missions[0].iter().fold(0.0f64, |acc, &r| acc.max(m.update(r)));
        assert!(max < tau);
        // And the threshold is in a sane ballpark (window * mean * margin-ish).
        assert!(tau > 30.0 && tau < 150.0, "tau {tau}");
    }

    #[test]
    fn bigger_window_bigger_threshold() {
        let missions: Vec<Vec<f64>> = (0..2).map(benign).collect();
        let t_small = calibrate_window_threshold(&missions, 50, 1.0);
        let t_big = calibrate_window_threshold(&missions, 300, 1.0);
        assert!(t_big > 2.0 * t_small, "{t_small} vs {t_big}");
    }

    #[test]
    fn cusum_calibration_silences_benign() {
        let missions: Vec<Vec<f64>> = (0..3).map(benign).collect();
        let (drift, tau) = calibrate_cusum_threshold(&missions, 0.99, 0.1, 1.25);
        assert!(drift > 0.8 && drift < 1.05, "drift {drift}");
        let mut c = Cusum::new(drift);
        let max = missions[1].iter().fold(0.0f64, |acc, &r| acc.max(c.update(r)));
        assert!(max < tau, "benign replay {max} exceeded tau {tau}");
    }

    #[test]
    #[should_panic(expected = "no residuals")]
    fn empty_rejected() {
        let _ = calibrate_window_threshold(&[], 10, 1.0);
    }
}
