//! Simulated sensor suite: GPS, gyroscope, accelerometer, barometer,
//! magnetometer, with seeded Gaussian noise.

use crate::readings::SensorReadings;
use pidpiper_math::{Mat3, Vec3};
use pidpiper_sim::quadcopter::GRAVITY;
use pidpiper_sim::state::RigidBodyState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-sensor 1-sigma noise levels.
///
/// The defaults correspond to a research-grade Pixhawk-class sensor stack;
/// scale them with [`NoiseConfig::scaled`] for cheaper or better hardware
/// (e.g. the Sky-viper profile multiplies IMU noise by 2.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// GPS horizontal position noise (m).
    pub gps_xy: f64,
    /// GPS vertical position noise (m).
    pub gps_z: f64,
    /// GPS velocity noise (m/s).
    pub gps_vel: f64,
    /// Gyroscope noise (rad/s).
    pub gyro: f64,
    /// Accelerometer noise (m/s^2).
    pub accel: f64,
    /// Barometer altitude noise (m).
    pub baro: f64,
    /// Magnetometer heading noise (rad).
    pub mag: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            gps_xy: 0.35,
            gps_z: 0.6,
            gps_vel: 0.1,
            gyro: 0.008,
            accel: 0.12,
            baro: 0.25,
            mag: 0.015,
        }
    }
}

impl NoiseConfig {
    /// Returns a copy with IMU channels (gyro, accel, mag) scaled by
    /// `imu_scale` and GPS channels by `gps_scale`.
    pub fn scaled(&self, imu_scale: f64, gps_scale: f64) -> NoiseConfig {
        NoiseConfig {
            gps_xy: self.gps_xy * gps_scale,
            gps_z: self.gps_z * gps_scale,
            gps_vel: self.gps_vel * gps_scale,
            gyro: self.gyro * imu_scale,
            accel: self.accel * imu_scale,
            baro: self.baro * imu_scale,
            mag: self.mag * imu_scale,
        }
    }

    /// A noiseless configuration (useful in deterministic tests).
    pub fn noiseless() -> NoiseConfig {
        NoiseConfig {
            gps_xy: 0.0,
            gps_z: 0.0,
            gps_vel: 0.0,
            gyro: 0.0,
            accel: 0.0,
            baro: 0.0,
            mag: 0.0,
        }
    }
}

/// Stateful sensor simulator.
///
/// # Examples
///
/// ```
/// use pidpiper_sensors::{SensorSuite, NoiseConfig};
/// use pidpiper_sim::state::RigidBodyState;
/// use pidpiper_math::Vec3;
///
/// let mut suite = SensorSuite::new(NoiseConfig::noiseless(), 0);
/// let truth = RigidBodyState::at_rest(Vec3::new(3.0, 4.0, 5.0));
/// let r = suite.sample(&truth, 0.01);
/// assert_eq!(r.gps_position, truth.position);
/// ```
#[derive(Debug, Clone)]
pub struct SensorSuite {
    noise: NoiseConfig,
    rng: StdRng,
}

impl SensorSuite {
    /// Creates a suite with the given noise levels and RNG seed.
    pub fn new(noise: NoiseConfig, seed: u64) -> Self {
        SensorSuite {
            noise,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured noise levels.
    pub fn noise(&self) -> &NoiseConfig {
        &self.noise
    }

    /// Samples every sensor given the ground-truth state.
    ///
    /// `_dt` is accepted for future rate-dependent effects (bias random
    /// walk); the current model is white noise only.
    pub fn sample(&mut self, truth: &RigidBodyState, _dt: f64) -> SensorReadings {
        let n = self.noise;
        // Accelerometer measures specific force in the body frame:
        // f_body = R^T * (a_world + g * z_world).
        let rot = Mat3::from_euler(truth.attitude.x, truth.attitude.y, truth.attitude.z);
        let specific_force_world = truth.acceleration + Vec3::new(0.0, 0.0, GRAVITY);
        let accel_body = rot.transpose() * specific_force_world;

        SensorReadings {
            gps_position: truth.position
                + Vec3::new(
                    self.gaussian() * n.gps_xy,
                    self.gaussian() * n.gps_xy,
                    self.gaussian() * n.gps_z,
                ),
            gps_velocity: truth.velocity
                + Vec3::new(
                    self.gaussian() * n.gps_vel,
                    self.gaussian() * n.gps_vel,
                    self.gaussian() * n.gps_vel,
                ),
            baro_altitude: truth.position.z + self.gaussian() * n.baro,
            gyro: truth.body_rates
                + Vec3::new(
                    self.gaussian() * n.gyro,
                    self.gaussian() * n.gyro,
                    self.gaussian() * n.gyro,
                ),
            accel: accel_body
                + Vec3::new(
                    self.gaussian() * n.accel,
                    self.gaussian() * n.accel,
                    self.gaussian() * n.accel,
                ),
            mag_heading: pidpiper_math::wrap_angle(truth.attitude.z + self.gaussian() * n.mag),
        }
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_reports_truth() {
        let mut s = SensorSuite::new(NoiseConfig::noiseless(), 1);
        let mut truth = RigidBodyState::at_rest(Vec3::new(1.0, 2.0, 3.0));
        truth.body_rates = Vec3::new(0.1, -0.2, 0.3);
        let r = s.sample(&truth, 0.01);
        assert_eq!(r.gps_position, truth.position);
        assert_eq!(r.gyro, truth.body_rates);
        assert_eq!(r.baro_altitude, 3.0);
        assert_eq!(r.mag_heading, 0.0);
    }

    #[test]
    fn accel_reads_gravity_at_rest() {
        let mut s = SensorSuite::new(NoiseConfig::noiseless(), 1);
        let truth = RigidBodyState::at_rest(Vec3::ZERO);
        let r = s.sample(&truth, 0.01);
        assert!((r.accel.z - GRAVITY).abs() < 1e-9);
        assert!(r.accel.x.abs() < 1e-9 && r.accel.y.abs() < 1e-9);
    }

    #[test]
    fn accel_tilts_with_attitude() {
        let mut s = SensorSuite::new(NoiseConfig::noiseless(), 1);
        let mut truth = RigidBodyState::at_rest(Vec3::ZERO);
        truth.attitude = Vec3::new(0.0, 0.3, 0.0); // pitched
        let r = s.sample(&truth, 0.01);
        // Gravity projects onto the body x axis when pitched.
        assert!(r.accel.x.abs() > 0.5, "accel.x = {}", r.accel.x);
        assert!(r.accel.z < GRAVITY);
    }

    #[test]
    fn noise_statistics_match_config() {
        let cfg = NoiseConfig::default();
        let mut s = SensorSuite::new(cfg, 77);
        let truth = RigidBodyState::at_rest(Vec3::ZERO);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let r = s.sample(&truth, 0.01);
            sum += r.gps_position.x;
            sum_sq += r.gps_position.x * r.gps_position.x;
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((std - cfg.gps_xy).abs() < 0.03, "std {std} vs {}", cfg.gps_xy);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let truth = RigidBodyState::at_rest(Vec3::new(5.0, 5.0, 5.0));
        let mut a = SensorSuite::new(NoiseConfig::default(), 13);
        let mut b = SensorSuite::new(NoiseConfig::default(), 13);
        for _ in 0..50 {
            assert_eq!(a.sample(&truth, 0.01), b.sample(&truth, 0.01));
        }
    }

    #[test]
    fn scaling_raises_noise() {
        let base = NoiseConfig::default();
        let scaled = base.scaled(2.6, 1.8);
        assert!((scaled.gyro - base.gyro * 2.6).abs() < 1e-12);
        assert!((scaled.gps_xy - base.gps_xy * 1.8).abs() < 1e-12);
    }
}
