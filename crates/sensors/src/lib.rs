//! Sensor simulation and state estimation for the PID-Piper reproduction.
//!
//! Physical attacks in the paper perturb *sensor measurements*, not ground
//! truth — a GPS spoofer shifts the reported position, acoustic injection
//! biases the gyroscope. This crate provides:
//!
//! - [`suite::SensorSuite`]: simulated GPS, gyroscope, accelerometer,
//!   barometer and magnetometer with seeded Gaussian noise, scaled per
//!   vehicle profile (the Sky-viper's cheap IMU is noisier than the
//!   Pixhawk's);
//! - [`readings::SensorReadings`]: one sample of every sensor — the object
//!   the attack engine mutates;
//! - [`estimator::Estimator`]: an EKF-style estimator (complementary
//!   attitude filter + Kalman position/velocity fusion with covariance
//!   tracking) that turns readings into the state the controller consumes.
//!   The tracked covariance doubles as the paper's "position variance"
//!   feature.
//!
//! # Examples
//!
//! ```
//! use pidpiper_sensors::{SensorSuite, NoiseConfig, Estimator};
//! use pidpiper_sim::state::RigidBodyState;
//! use pidpiper_math::Vec3;
//!
//! let mut suite = SensorSuite::new(NoiseConfig::default(), 42);
//! let mut est = Estimator::new();
//! let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
//! for _ in 0..100 {
//!     let readings = suite.sample(&truth, 0.01);
//!     est.update(&readings, 0.01);
//! }
//! assert!(est.state().position.distance(truth.position) < 2.0);
//! ```

#![deny(missing_docs)]

pub mod estimator;
pub mod guard;
pub mod readings;
pub mod suite;

pub use estimator::{EstimatedState, Estimator};
pub use guard::{GuardVerdict, ReadingsGuard};
pub use readings::SensorReadings;
pub use suite::{NoiseConfig, SensorSuite};
