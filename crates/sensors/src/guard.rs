//! The runner-boundary readings guard: hold-last-good validation of
//! [`SensorReadings`] before they reach the estimator or any defense.
//!
//! A non-finite sample (GPS dropout, DMA corruption) must never reach
//! [`crate::Estimator::update`]: NaN propagates through every fused state
//! and poisons the estimate permanently. The guard validates each channel
//! and substitutes the last good value for any channel that fails, while
//! counting staleness so the supervisor layer can surface how long the
//! vehicle flew on held data.

use crate::readings::SensorReadings;

/// Per-channel hold-last-good validator with staleness accounting.
///
/// # Examples
///
/// ```
/// use pidpiper_sensors::{ReadingsGuard, SensorReadings};
///
/// let mut guard = ReadingsGuard::new();
/// let good = SensorReadings { baro_altitude: 10.0, ..Default::default() };
/// assert_eq!(guard.accept(&good).baro_altitude, 10.0);
/// let bad = SensorReadings { baro_altitude: f64::NAN, ..Default::default() };
/// // The NaN channel is replaced by the held value; the rest pass through.
/// assert_eq!(guard.accept(&bad).baro_altitude, 10.0);
/// assert_eq!(guard.total_stale_steps(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReadingsGuard {
    last_good: SensorReadings,
    consecutive_stale: usize,
    max_consecutive_stale: usize,
    total_stale: usize,
}

impl ReadingsGuard {
    /// Creates a guard with a default (all-zero) hold state.
    pub fn new() -> Self {
        ReadingsGuard::default()
    }

    /// Validates one sample. Finite channels pass through and refresh the
    /// hold state; non-finite channels are replaced by the last good value
    /// of that channel (all-zero before any good sample arrives). A step
    /// with *any* held channel counts as stale.
    pub fn accept(&mut self, r: &SensorReadings) -> SensorReadings {
        if r.is_finite() {
            // Fast path: the whole sample is good.
            self.last_good = *r;
            self.consecutive_stale = 0;
            return *r;
        }
        let mut out = *r;
        // Per-channel merge: a GPS dropout must not freeze a healthy IMU.
        if !out.gps_position.is_finite() {
            out.gps_position = self.last_good.gps_position;
        }
        if !out.gps_velocity.is_finite() {
            out.gps_velocity = self.last_good.gps_velocity;
        }
        if !out.baro_altitude.is_finite() {
            out.baro_altitude = self.last_good.baro_altitude;
        }
        if !out.gyro.is_finite() {
            out.gyro = self.last_good.gyro;
        }
        if !out.accel.is_finite() {
            out.accel = self.last_good.accel;
        }
        if !out.mag_heading.is_finite() {
            out.mag_heading = self.last_good.mag_heading;
        }
        // The surviving finite channels are trustworthy: refresh the hold
        // state from the merged sample so a long dropout holds the newest
        // good data, not the pre-fault snapshot.
        self.last_good = out;
        self.total_stale += 1;
        self.consecutive_stale += 1;
        self.max_consecutive_stale = self.max_consecutive_stale.max(self.consecutive_stale);
        out
    }

    /// Steps in a row (ending now) with at least one held channel.
    pub fn consecutive_stale_steps(&self) -> usize {
        self.consecutive_stale
    }

    /// The longest stale run seen since the last reset.
    pub fn max_consecutive_stale_steps(&self) -> usize {
        self.max_consecutive_stale
    }

    /// Total steps with at least one held channel since the last reset.
    pub fn total_stale_steps(&self) -> usize {
        self.total_stale
    }

    /// Clears hold state and counters (between missions).
    pub fn reset(&mut self) {
        *self = ReadingsGuard::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_math::Vec3;

    fn good() -> SensorReadings {
        SensorReadings {
            gps_position: Vec3::new(1.0, 2.0, 3.0),
            gps_velocity: Vec3::new(0.1, 0.2, 0.3),
            baro_altitude: 3.0,
            gyro: Vec3::new(0.01, 0.02, 0.03),
            accel: Vec3::new(0.0, 0.0, 9.81),
            mag_heading: 0.5,
        }
    }

    #[test]
    fn finite_samples_pass_through_unchanged() {
        let mut g = ReadingsGuard::new();
        let r = good();
        assert_eq!(g.accept(&r), r);
        assert_eq!(g.total_stale_steps(), 0);
        assert_eq!(g.consecutive_stale_steps(), 0);
    }

    #[test]
    fn partial_dropout_holds_only_the_bad_channel() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        let mut bad = good();
        bad.gps_position = Vec3::splat(f64::NAN);
        bad.gps_velocity = Vec3::splat(f64::NAN);
        bad.gyro = Vec3::new(0.5, 0.0, 0.0); // fresh, finite IMU data
        let out = g.accept(&bad);
        assert_eq!(out.gps_position, good().gps_position, "GPS held");
        assert_eq!(out.gyro, Vec3::new(0.5, 0.0, 0.0), "fresh gyro passes");
        assert!(out.is_finite());
        assert_eq!(g.total_stale_steps(), 1);
    }

    #[test]
    fn staleness_counters_track_runs() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        let mut bad = good();
        bad.baro_altitude = f64::INFINITY;
        for _ in 0..5 {
            g.accept(&bad);
        }
        assert_eq!(g.consecutive_stale_steps(), 5);
        g.accept(&good());
        assert_eq!(g.consecutive_stale_steps(), 0);
        assert_eq!(g.max_consecutive_stale_steps(), 5);
        assert_eq!(g.total_stale_steps(), 5);
    }

    #[test]
    fn hold_state_refreshes_during_partial_faults() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        // Baro dies; baro holds at 3.0 while GPS keeps updating.
        for i in 0..3 {
            let mut r = good();
            r.baro_altitude = f64::NAN;
            r.gps_position.x = 10.0 + i as f64;
            let out = g.accept(&r);
            assert_eq!(out.baro_altitude, 3.0);
            assert_eq!(out.gps_position.x, 10.0 + i as f64);
        }
        // GPS now also dies: it must hold the *latest* good fix (12.0),
        // not the pre-fault one.
        let mut r = good();
        r.baro_altitude = f64::NAN;
        r.gps_position = Vec3::splat(f64::NAN);
        assert_eq!(g.accept(&r).gps_position.x, 12.0);
    }

    #[test]
    fn all_nan_before_any_good_sample_yields_defaults() {
        let mut g = ReadingsGuard::new();
        let mut r = good();
        r.gps_position = Vec3::splat(f64::NAN);
        let out = g.accept(&r);
        assert_eq!(out.gps_position, Vec3::ZERO);
        assert!(out.is_finite());
    }

    #[test]
    fn reset_clears_counters_and_hold() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        let mut bad = good();
        bad.mag_heading = f64::NAN;
        g.accept(&bad);
        g.reset();
        assert_eq!(g.total_stale_steps(), 0);
        assert_eq!(g.max_consecutive_stale_steps(), 0);
        let mut r = good();
        r.baro_altitude = f64::NAN;
        assert_eq!(g.accept(&r).baro_altitude, 0.0, "hold state cleared");
    }
}
