//! The runner-boundary readings guard: hold-last-good validation of
//! [`SensorReadings`] before they reach the estimator or any defense.
//!
//! A non-finite sample (GPS dropout, DMA corruption) must never reach
//! [`crate::Estimator::update`]: NaN propagates through every fused state
//! and poisons the estimate permanently. The guard validates each channel
//! and substitutes the last good value for any channel that fails, while
//! counting staleness so the supervisor layer can surface how long the
//! vehicle flew on held data.

use crate::readings::SensorReadings;

/// Per-channel hold-last-good validator with staleness accounting.
///
/// # Examples
///
/// ```
/// use pidpiper_sensors::{ReadingsGuard, SensorReadings};
///
/// let mut guard = ReadingsGuard::new();
/// let good = SensorReadings { baro_altitude: 10.0, ..Default::default() };
/// assert_eq!(guard.accept(&good).baro_altitude, 10.0);
/// let bad = SensorReadings { baro_altitude: f64::NAN, ..Default::default() };
/// // The NaN channel is replaced by the held value; the rest pass through.
/// assert_eq!(guard.accept(&bad).baro_altitude, 10.0);
/// assert_eq!(guard.total_stale_steps(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReadingsGuard {
    last_good: SensorReadings,
    consecutive_stale: usize,
    max_consecutive_stale: usize,
    total_stale: usize,
    /// Longest stale run (steps) the guard will bridge with held data;
    /// `None` = hold forever (the historical behavior).
    max_hold: Option<usize>,
}

/// The guard's verdict on one sample (see
/// [`ReadingsGuard::accept_checked`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// The sample is usable: fully finite, or repaired by substituting
    /// held values into its non-finite channels.
    Pass(SensorReadings),
    /// The stale run has outlasted the hold window: the held data is too
    /// old to keep replaying. The caller should drop the sample and let
    /// the estimator coast on its own prediction (its non-finite input
    /// defense holds the state unchanged), rather than feed it stale
    /// readings forever.
    HoldExhausted,
}

impl ReadingsGuard {
    /// Creates a guard with a default (all-zero) hold state and an
    /// unlimited hold window.
    pub fn new() -> Self {
        ReadingsGuard::default()
    }

    /// Creates a guard whose hold window is `max_hold_steps`: once a
    /// stale run exceeds that many consecutive steps,
    /// [`ReadingsGuard::accept_checked`] reports
    /// [`GuardVerdict::HoldExhausted`] instead of replaying stale data.
    pub fn with_max_hold(max_hold_steps: usize) -> Self {
        ReadingsGuard {
            max_hold: Some(max_hold_steps),
            ..ReadingsGuard::default()
        }
    }

    /// Validates one sample. Finite channels pass through and refresh the
    /// hold state; non-finite channels are replaced by the last good value
    /// of that channel (all-zero before any good sample arrives). A step
    /// with *any* held channel counts as stale.
    ///
    /// This is [`ReadingsGuard::accept_checked`] with the hold-window
    /// exhaustion folded away: an exhausted window keeps substituting
    /// anyway, preserving the historical unlimited behavior for guards
    /// built with [`ReadingsGuard::new`].
    pub fn accept(&mut self, r: &SensorReadings) -> SensorReadings {
        match self.accept_checked(r) {
            GuardVerdict::Pass(out) => out,
            GuardVerdict::HoldExhausted => self.merge_held(r),
        }
    }

    /// Validates one sample, reporting hold-window exhaustion instead of
    /// silently replaying stale data forever.
    ///
    /// Staleness counters advance on every stale step either way, so the
    /// supervisor's accounting is identical whether the caller uses this
    /// or [`ReadingsGuard::accept`].
    pub fn accept_checked(&mut self, r: &SensorReadings) -> GuardVerdict {
        if r.is_finite() {
            // Fast path: the whole sample is good.
            self.last_good = *r;
            self.consecutive_stale = 0;
            return GuardVerdict::Pass(*r);
        }
        self.total_stale += 1;
        self.consecutive_stale += 1;
        self.max_consecutive_stale = self.max_consecutive_stale.max(self.consecutive_stale);
        if let Some(limit) = self.max_hold {
            if self.consecutive_stale > limit {
                // Window exhausted: the stale step is still counted, but
                // the guard refuses to manufacture another sample from
                // old data.
                return GuardVerdict::HoldExhausted;
            }
        }
        GuardVerdict::Pass(self.merge_held(r))
    }

    /// Per-channel hold-last-good substitution (no staleness accounting —
    /// the callers have already counted the step).
    fn merge_held(&mut self, r: &SensorReadings) -> SensorReadings {
        let mut out = *r;
        // Per-channel merge: a GPS dropout must not freeze a healthy IMU.
        if !out.gps_position.is_finite() {
            out.gps_position = self.last_good.gps_position;
        }
        if !out.gps_velocity.is_finite() {
            out.gps_velocity = self.last_good.gps_velocity;
        }
        if !out.baro_altitude.is_finite() {
            out.baro_altitude = self.last_good.baro_altitude;
        }
        if !out.gyro.is_finite() {
            out.gyro = self.last_good.gyro;
        }
        if !out.accel.is_finite() {
            out.accel = self.last_good.accel;
        }
        if !out.mag_heading.is_finite() {
            out.mag_heading = self.last_good.mag_heading;
        }
        // The surviving finite channels are trustworthy: refresh the hold
        // state from the merged sample so a long dropout holds the newest
        // good data, not the pre-fault snapshot.
        self.last_good = out;
        out
    }

    /// Steps in a row (ending now) with at least one held channel.
    pub fn consecutive_stale_steps(&self) -> usize {
        self.consecutive_stale
    }

    /// The longest stale run seen since the last reset.
    pub fn max_consecutive_stale_steps(&self) -> usize {
        self.max_consecutive_stale
    }

    /// Total steps with at least one held channel since the last reset.
    pub fn total_stale_steps(&self) -> usize {
        self.total_stale
    }

    /// Clears hold state and counters (between missions), keeping the
    /// configured hold window.
    pub fn reset(&mut self) {
        *self = ReadingsGuard {
            max_hold: self.max_hold,
            ..ReadingsGuard::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_math::Vec3;

    fn good() -> SensorReadings {
        SensorReadings {
            gps_position: Vec3::new(1.0, 2.0, 3.0),
            gps_velocity: Vec3::new(0.1, 0.2, 0.3),
            baro_altitude: 3.0,
            gyro: Vec3::new(0.01, 0.02, 0.03),
            accel: Vec3::new(0.0, 0.0, 9.81),
            mag_heading: 0.5,
        }
    }

    #[test]
    fn finite_samples_pass_through_unchanged() {
        let mut g = ReadingsGuard::new();
        let r = good();
        assert_eq!(g.accept(&r), r);
        assert_eq!(g.total_stale_steps(), 0);
        assert_eq!(g.consecutive_stale_steps(), 0);
    }

    #[test]
    fn partial_dropout_holds_only_the_bad_channel() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        let mut bad = good();
        bad.gps_position = Vec3::splat(f64::NAN);
        bad.gps_velocity = Vec3::splat(f64::NAN);
        bad.gyro = Vec3::new(0.5, 0.0, 0.0); // fresh, finite IMU data
        let out = g.accept(&bad);
        assert_eq!(out.gps_position, good().gps_position, "GPS held");
        assert_eq!(out.gyro, Vec3::new(0.5, 0.0, 0.0), "fresh gyro passes");
        assert!(out.is_finite());
        assert_eq!(g.total_stale_steps(), 1);
    }

    #[test]
    fn staleness_counters_track_runs() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        let mut bad = good();
        bad.baro_altitude = f64::INFINITY;
        for _ in 0..5 {
            g.accept(&bad);
        }
        assert_eq!(g.consecutive_stale_steps(), 5);
        g.accept(&good());
        assert_eq!(g.consecutive_stale_steps(), 0);
        assert_eq!(g.max_consecutive_stale_steps(), 5);
        assert_eq!(g.total_stale_steps(), 5);
    }

    #[test]
    fn hold_state_refreshes_during_partial_faults() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        // Baro dies; baro holds at 3.0 while GPS keeps updating.
        for i in 0..3 {
            let mut r = good();
            r.baro_altitude = f64::NAN;
            r.gps_position.x = 10.0 + i as f64;
            let out = g.accept(&r);
            assert_eq!(out.baro_altitude, 3.0);
            assert_eq!(out.gps_position.x, 10.0 + i as f64);
        }
        // GPS now also dies: it must hold the *latest* good fix (12.0),
        // not the pre-fault one.
        let mut r = good();
        r.baro_altitude = f64::NAN;
        r.gps_position = Vec3::splat(f64::NAN);
        assert_eq!(g.accept(&r).gps_position.x, 12.0);
    }

    #[test]
    fn all_nan_before_any_good_sample_yields_defaults() {
        let mut g = ReadingsGuard::new();
        let mut r = good();
        r.gps_position = Vec3::splat(f64::NAN);
        let out = g.accept(&r);
        assert_eq!(out.gps_position, Vec3::ZERO);
        assert!(out.is_finite());
    }

    #[test]
    fn bounded_guard_exhausts_after_the_window() {
        let mut g = ReadingsGuard::with_max_hold(3);
        g.accept_checked(&good());
        let mut bad = good();
        bad.gps_position = Vec3::splat(f64::NAN);
        // The window bridges exactly 3 consecutive stale steps...
        for step in 0..3 {
            match g.accept_checked(&bad) {
                GuardVerdict::Pass(out) => {
                    assert_eq!(out.gps_position, good().gps_position, "held at step {step}");
                }
                GuardVerdict::HoldExhausted => panic!("exhausted early at step {step}"),
            }
        }
        // ...then refuses to keep replaying stale data.
        assert_eq!(g.accept_checked(&bad), GuardVerdict::HoldExhausted);
        assert_eq!(g.accept_checked(&bad), GuardVerdict::HoldExhausted);
        // Staleness is still counted on exhausted steps.
        assert_eq!(g.total_stale_steps(), 5);
        assert_eq!(g.consecutive_stale_steps(), 5);
    }

    #[test]
    fn bounded_guard_recovers_when_good_data_returns() {
        let mut g = ReadingsGuard::with_max_hold(1);
        g.accept_checked(&good());
        let mut bad = good();
        bad.baro_altitude = f64::NAN;
        assert!(matches!(g.accept_checked(&bad), GuardVerdict::Pass(_)));
        assert_eq!(g.accept_checked(&bad), GuardVerdict::HoldExhausted);
        // A good sample ends the run; the window re-arms in full.
        let mut fresh = good();
        fresh.baro_altitude = 7.5;
        assert_eq!(g.accept_checked(&fresh), GuardVerdict::Pass(fresh));
        assert!(matches!(g.accept_checked(&bad), GuardVerdict::Pass(_)));
    }

    #[test]
    fn unlimited_guard_never_exhausts() {
        let mut g = ReadingsGuard::new();
        g.accept_checked(&good());
        let mut bad = good();
        bad.gyro = Vec3::splat(f64::NAN);
        for _ in 0..1000 {
            assert!(matches!(g.accept_checked(&bad), GuardVerdict::Pass(_)));
        }
    }

    #[test]
    fn accept_on_a_bounded_guard_still_substitutes_after_exhaustion() {
        // `accept` folds exhaustion away (historical behavior) but the
        // counters must not double-count the exhausted steps.
        let mut g = ReadingsGuard::with_max_hold(2);
        g.accept(&good());
        let mut bad = good();
        bad.mag_heading = f64::NAN;
        for _ in 0..4 {
            assert!(g.accept(&bad).mag_heading.is_finite());
        }
        assert_eq!(g.total_stale_steps(), 4);
    }

    #[test]
    fn exhausted_burst_degrades_to_estimator_fallback_not_stale_replay() {
        // The satellite scenario: a NaN burst outlasting the hold window.
        // Once the window is exhausted the guard stops manufacturing
        // samples; the estimator's own non-finite defense then holds the
        // state unchanged — coasting on its prediction instead of being
        // fed the same stale fix forever.
        use crate::Estimator;
        let mut guard = ReadingsGuard::with_max_hold(5);
        let mut est = Estimator::new();
        let dt = 0.01;
        // Settle on good data.
        let mut last_state = est.update(&good(), dt);
        guard.accept_checked(&good());
        // An all-NaN burst far longer than the window.
        let burst = SensorReadings {
            gps_position: Vec3::splat(f64::NAN),
            gps_velocity: Vec3::splat(f64::NAN),
            baro_altitude: f64::NAN,
            gyro: Vec3::splat(f64::NAN),
            accel: Vec3::splat(f64::NAN),
            mag_heading: f64::NAN,
        };
        let mut exhausted_steps = 0;
        for _ in 0..50 {
            match guard.accept_checked(&burst) {
                GuardVerdict::Pass(held) => {
                    last_state = est.update(&held, dt);
                }
                GuardVerdict::HoldExhausted => {
                    exhausted_steps += 1;
                    // Estimator fallback: the raw (non-finite) sample goes
                    // to the estimator, whose non-finite defense holds the
                    // state bit-for-bit instead of replaying stale data.
                    let coasted = est.update(&burst, dt);
                    assert!(coasted.position.is_finite());
                    assert_eq!(coasted.position, last_state.position, "estimate held, not driven");
                    assert_eq!(coasted.velocity, last_state.velocity);
                }
            }
        }
        assert_eq!(exhausted_steps, 45, "window of 5 bridges 5 of 50 steps");
    }

    #[test]
    fn reset_preserves_the_configured_window() {
        let mut g = ReadingsGuard::with_max_hold(1);
        g.accept(&good());
        let mut bad = good();
        bad.baro_altitude = f64::NAN;
        g.accept(&bad);
        g.accept(&bad);
        g.reset();
        assert_eq!(g.total_stale_steps(), 0);
        // The window is still 1 after the reset.
        assert!(matches!(g.accept_checked(&bad), GuardVerdict::Pass(_)));
        assert_eq!(g.accept_checked(&bad), GuardVerdict::HoldExhausted);
    }

    #[test]
    fn reset_clears_counters_and_hold() {
        let mut g = ReadingsGuard::new();
        g.accept(&good());
        let mut bad = good();
        bad.mag_heading = f64::NAN;
        g.accept(&bad);
        g.reset();
        assert_eq!(g.total_stale_steps(), 0);
        assert_eq!(g.max_consecutive_stale_steps(), 0);
        let mut r = good();
        r.baro_altitude = f64::NAN;
        assert_eq!(g.accept(&r).baro_altitude, 0.0, "hold state cleared");
    }
}
