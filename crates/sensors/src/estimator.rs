//! EKF-style state estimator: complementary attitude filter plus
//! Kalman position/velocity fusion with covariance tracking.
//!
//! RV autopilots translate raw sensor measurements into the vehicle state
//! with an Extended Kalman Filter. We implement a lightweight equivalent
//! that preserves the properties the paper's evaluation relies on:
//!
//! 1. attacked sensors steer the *estimated* state (GPS spoofing drags the
//!    position estimate; gyro tampering corrupts the attitude estimate);
//! 2. the filter maintains a position covariance used as the "position
//!    variance" model feature;
//! 3. attitude is gyro-propagated and accel/mag-corrected, so gyro bias
//!    injection produces exactly the drift-and-correct dynamics the
//!    paper's Attack-1 exploits.

use crate::readings::SensorReadings;
use pidpiper_math::{wrap_angle, Mat3, Vec3};
use pidpiper_sim::quadcopter::GRAVITY;

/// The estimator's belief about the vehicle state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EstimatedState {
    /// Estimated position (ENU metres).
    pub position: Vec3,
    /// Estimated velocity (ENU m/s).
    pub velocity: Vec3,
    /// Estimated Euler attitude (roll, pitch, yaw), radians.
    pub attitude: Vec3,
    /// Body rates as read from the (possibly attacked) gyroscope (rad/s).
    pub body_rates: Vec3,
    /// Per-axis position estimate variance (m^2) — the paper's "position
    /// variance" feature.
    pub position_variance: Vec3,
    /// World-frame linear acceleration estimate (m/s^2).
    pub acceleration: Vec3,
}

/// Tuning gains for the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorGains {
    /// Complementary-filter blend for accel-derived roll/pitch per second.
    pub attitude_correction: f64,
    /// Complementary-filter blend for mag-derived yaw per second.
    pub yaw_correction: f64,
    /// Process noise for position covariance (m^2/s).
    pub process_noise: f64,
    /// GPS measurement variance (m^2).
    pub gps_variance: f64,
    /// Barometer measurement variance (m^2).
    pub baro_variance: f64,
    /// Blend gain for GPS velocity per second.
    pub velocity_correction: f64,
}

impl Default for EstimatorGains {
    fn default() -> Self {
        EstimatorGains {
            attitude_correction: 1.2,
            yaw_correction: 2.0,
            process_noise: 0.6,
            gps_variance: 0.5,
            baro_variance: 0.3,
            velocity_correction: 4.0,
        }
    }
}

/// EKF-style estimator.
///
/// # Examples
///
/// ```
/// use pidpiper_sensors::{Estimator, SensorReadings};
///
/// let mut est = Estimator::new();
/// let mut r = SensorReadings::default();
/// r.accel.z = 9.80665; // at rest
/// for _ in 0..200 { est.update(&r, 0.01); }
/// assert!(est.state().attitude.x.abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Estimator {
    state: EstimatedState,
    gains: EstimatorGains,
    initialized: bool,
    last_gps_vel: Vec3,
    accel_world_lp: Vec3,
    /// Low-passed attitude innovation (accel-gravity measurement minus the
    /// gyro-propagated estimate), radians. Near zero in clean conditions;
    /// a persistent gyroscope bias `f` holds it near `f / correction_gain`
    /// — which makes it a direct gyro-attack indicator.
    attitude_innovation_lp: (f64, f64),
}

impl Default for Estimator {
    fn default() -> Self {
        Estimator::new()
    }
}

impl Estimator {
    /// Creates an estimator with default gains.
    pub fn new() -> Self {
        Estimator::with_gains(EstimatorGains::default())
    }

    /// Creates an estimator with custom gains.
    pub fn with_gains(gains: EstimatorGains) -> Self {
        Estimator {
            state: EstimatedState {
                position_variance: Vec3::splat(1.0),
                ..Default::default()
            },
            gains,
            initialized: false,
            last_gps_vel: Vec3::ZERO,
            accel_world_lp: Vec3::ZERO,
            attitude_innovation_lp: (0.0, 0.0),
        }
    }

    /// The current state estimate.
    #[inline]
    pub fn state(&self) -> &EstimatedState {
        &self.state
    }

    /// Resets the estimator to an uninitialized state.
    pub fn reset(&mut self) {
        *self = Estimator::with_gains(self.gains);
    }

    /// The low-passed attitude innovation `(roll, pitch)` in radians — a
    /// persistent non-zero value indicates the gyro stream disagrees with
    /// the accelerometer's gravity direction (gyro tampering).
    pub fn attitude_innovation(&self) -> (f64, f64) {
        self.attitude_innovation_lp
    }

    /// Fuses one sensor sample, advancing the estimate by `dt` seconds.
    /// Returns the updated estimate.
    pub fn update(&mut self, r: &SensorReadings, dt: f64) -> EstimatedState {
        debug_assert!(dt > 0.0 && dt < 0.5, "dt out of sane range: {dt}");
        // Defense in depth behind [`crate::ReadingsGuard`]: a non-finite
        // sample would poison every fused state permanently (NaN never
        // washes out of the complementary filter), so the estimate holds
        // rather than integrate garbage.
        if !r.is_finite() {
            return self.state;
        }
        if !self.initialized {
            // Snap to the first fix.
            self.state.position = r.gps_position;
            self.state.velocity = r.gps_velocity;
            self.state.attitude = Vec3::new(0.0, 0.0, r.mag_heading);
            self.initialized = true;
        }
        let g = self.gains;

        // --- Attitude: propagate gyro, correct with accel (roll/pitch) and
        // magnetometer (yaw).
        self.state.body_rates = r.gyro;
        let (roll, pitch, _yaw) = (
            self.state.attitude.x,
            self.state.attitude.y,
            self.state.attitude.z,
        );
        let (sr, cr) = roll.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        let cp_safe = if cp.abs() < 1e-3 { 1e-3 } else { cp };
        let tp = sp / cp_safe;
        let euler_rates = Vec3::new(
            r.gyro.x + sr * tp * r.gyro.y + cr * tp * r.gyro.z,
            cr * r.gyro.y - sr * r.gyro.z,
            (sr / cp_safe) * r.gyro.y + (cr / cp_safe) * r.gyro.z,
        );
        let mut att = self.state.attitude + euler_rates * dt;

        // Accelerometer gravity-direction correction. In coordinated
        // flight the specific force aligns with the thrust (body-z) axis
        // regardless of tilt, so naive accel levelling fights real tilt.
        // We subtract an independent estimate of the world-frame linear
        // acceleration — the low-passed derivative of the GPS velocity —
        // before extracting the gravity direction (standard EKF practice).
        let gps_accel = (r.gps_velocity - self.last_gps_vel) / dt;
        self.last_gps_vel = r.gps_velocity;
        let lp = (dt / 0.3).min(1.0);
        self.accel_world_lp = self.accel_world_lp * (1.0 - lp) + gps_accel * lp;
        let rot_prev = Mat3::from_euler(att.x, att.y, att.z);
        let gravity_body = r.accel - rot_prev.transpose() * self.accel_world_lp;
        let grav_norm = gravity_body.norm();
        if (grav_norm - GRAVITY).abs() < 0.3 * GRAVITY {
            let roll_meas = gravity_body.y.atan2(gravity_body.z);
            let pitch_meas = (-gravity_body.x / grav_norm).clamp(-1.0, 1.0).asin();
            let innov_roll = wrap_angle(roll_meas - att.x);
            let innov_pitch = wrap_angle(pitch_meas - att.y);
            let blend = (g.attitude_correction * dt).min(1.0);
            att.x += blend * innov_roll;
            att.y += blend * innov_pitch;
            // Low-pass the innovation (tau ~0.5 s) for attack diagnostics.
            let lp = (dt / 0.5).min(1.0);
            self.attitude_innovation_lp.0 += lp * (innov_roll - self.attitude_innovation_lp.0);
            self.attitude_innovation_lp.1 += lp * (innov_pitch - self.attitude_innovation_lp.1);
        }
        let yaw_blend = (g.yaw_correction * dt).min(1.0);
        att.z = wrap_angle(att.z + yaw_blend * wrap_angle(r.mag_heading - att.z));
        att.x = wrap_angle(att.x);
        att.y = att.y.clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-3,
            std::f64::consts::FRAC_PI_2 - 1e-3,
        );
        self.state.attitude = att;

        // --- Acceleration in world frame from body-frame specific force.
        let rot = Mat3::from_euler(att.x, att.y, att.z);
        let accel_world = rot * r.accel - Vec3::new(0.0, 0.0, GRAVITY);
        self.state.acceleration = accel_world;

        // --- Position/velocity: dead-reckon then Kalman-correct with GPS
        // (XY, Z) and barometer (Z).
        self.state.velocity += accel_world * dt;
        let vel_blend = (g.velocity_correction * dt).min(1.0);
        self.state.velocity += (r.gps_velocity - self.state.velocity) * vel_blend;
        self.state.position += self.state.velocity * dt;

        // Covariance predict.
        self.state.position_variance += Vec3::splat(g.process_noise * dt);
        // GPS update per axis.
        for axis in 0..3 {
            let p = self.state.position_variance[axis];
            let meas_var = if axis == 2 {
                // Altitude blends GPS-Z and barometer: use the smaller.
                g.gps_variance.min(g.baro_variance)
            } else {
                g.gps_variance
            };
            let k = p / (p + meas_var);
            let meas = if axis == 2 {
                // Fuse GPS-Z and baro with inverse-variance weights.
                let wg = 1.0 / g.gps_variance;
                let wb = 1.0 / g.baro_variance;
                (r.gps_position.z * wg + r.baro_altitude * wb) / (wg + wb)
            } else {
                r.gps_position[axis]
            };
            self.state.position[axis] += k * (meas - self.state.position[axis]);
            self.state.position_variance[axis] = (1.0 - k) * p;
        }

        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{NoiseConfig, SensorSuite};
    use pidpiper_sim::state::RigidBodyState;

    const DT: f64 = 0.01;

    fn settle(est: &mut Estimator, suite: &mut SensorSuite, truth: &RigidBodyState, steps: usize) {
        for _ in 0..steps {
            let r = suite.sample(truth, DT);
            est.update(&r, DT);
        }
    }

    #[test]
    fn converges_to_static_truth() {
        let mut suite = SensorSuite::new(NoiseConfig::default(), 5);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::new(10.0, -4.0, 25.0));
        settle(&mut est, &mut suite, &truth, 500);
        assert!(
            est.state().position.distance(truth.position) < 0.6,
            "pos err {}",
            est.state().position.distance(truth.position)
        );
        assert!(est.state().attitude.norm() < 0.05);
        assert!(est.state().velocity.norm() < 0.3);
    }

    #[test]
    fn covariance_settles_below_prior() {
        let mut suite = SensorSuite::new(NoiseConfig::default(), 6);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::ZERO);
        settle(&mut est, &mut suite, &truth, 300);
        for axis in 0..3 {
            let v = est.state().position_variance[axis];
            assert!(v > 0.0 && v < 1.0, "variance[{axis}] = {v}");
        }
    }

    #[test]
    fn tracks_attitude_change() {
        let mut suite = SensorSuite::new(NoiseConfig::noiseless(), 0);
        let mut est = Estimator::new();
        let mut truth = RigidBodyState::at_rest(Vec3::ZERO);
        truth.attitude = Vec3::new(0.2, -0.1, 0.5);
        settle(&mut est, &mut suite, &truth, 600);
        assert!((est.state().attitude.x - 0.2).abs() < 0.02);
        assert!((est.state().attitude.y + 0.1).abs() < 0.02);
        assert!((est.state().attitude.z - 0.5).abs() < 0.02);
    }

    #[test]
    fn gps_bias_drags_position_estimate() {
        // The core mechanism behind GPS spoofing: a bias on the reported
        // position pulls the estimate by (almost) the full bias.
        let mut suite = SensorSuite::new(NoiseConfig::noiseless(), 0);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
        settle(&mut est, &mut suite, &truth, 200);
        for _ in 0..600 {
            let mut r = suite.sample(&truth, DT);
            r.gps_position.x += 20.0; // spoof
            est.update(&r, DT);
        }
        assert!(
            est.state().position.x > 15.0,
            "estimate dragged to {}",
            est.state().position.x
        );
    }

    #[test]
    fn non_finite_sample_holds_estimate_without_poisoning() {
        let mut suite = SensorSuite::new(NoiseConfig::default(), 7);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::new(3.0, 1.0, 12.0));
        settle(&mut est, &mut suite, &truth, 300);
        let before = *est.state();
        // A NaN burst reaches the estimator directly (the guard normally
        // filters this): the estimate must hold, not turn NaN.
        let mut bad = suite.sample(&truth, DT);
        bad.gps_position.x = f64::NAN;
        bad.gyro.y = f64::INFINITY;
        for _ in 0..50 {
            est.update(&bad, DT);
        }
        assert_eq!(*est.state(), before, "estimate held through the burst");
        // Recovery: good samples resume fusing normally.
        settle(&mut est, &mut suite, &truth, 200);
        assert!(est.state().position.is_finite());
        assert!(est.state().position.distance(truth.position) < 1.0);
    }

    #[test]
    fn gyro_bias_drifts_attitude_estimate() {
        // Acoustic gyro injection: a rate bias integrates into an attitude
        // error (partially opposed by the accel correction).
        let mut suite = SensorSuite::new(NoiseConfig::noiseless(), 0);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
        settle(&mut est, &mut suite, &truth, 200);
        for _ in 0..200 {
            let mut r = suite.sample(&truth, DT);
            r.gyro.x += 0.8; // rad/s bias
            est.update(&r, DT);
        }
        assert!(
            est.state().attitude.x > 0.15,
            "roll estimate drifted to {}",
            est.state().attitude.x
        );
    }

    #[test]
    fn attitude_innovation_near_zero_in_clean_conditions() {
        let mut suite = SensorSuite::new(NoiseConfig::default(), 31);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
        settle(&mut est, &mut suite, &truth, 800);
        let (ir, ip) = est.attitude_innovation();
        assert!(ir.abs() < 0.02, "clean roll innovation {ir}");
        assert!(ip.abs() < 0.02, "clean pitch innovation {ip}");
    }

    #[test]
    fn attitude_innovation_tracks_gyro_bias() {
        // A persistent gyro bias holds the innovation near bias / gain —
        // the gyro-attack indicator PID-Piper's exit condition uses.
        let gains = EstimatorGains {
            attitude_correction: 8.0,
            ..EstimatorGains::default()
        };
        let mut suite = SensorSuite::new(NoiseConfig::noiseless(), 0);
        let mut est = Estimator::with_gains(gains);
        let truth = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
        settle(&mut est, &mut suite, &truth, 300);
        for _ in 0..600 {
            let mut r = suite.sample(&truth, DT);
            r.gyro.x += 0.6;
            est.update(&r, DT);
        }
        let (ir, _) = est.attitude_innovation();
        let expected = -0.6 / 8.0;
        assert!(
            (ir - expected).abs() < 0.03,
            "innovation {ir} should sit near bias/gain {expected}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut suite = SensorSuite::new(NoiseConfig::default(), 9);
        let mut est = Estimator::new();
        let truth = RigidBodyState::at_rest(Vec3::new(50.0, 50.0, 50.0));
        settle(&mut est, &mut suite, &truth, 100);
        est.reset();
        assert_eq!(est.state().position, Vec3::ZERO);
        assert_eq!(est.state().position_variance, Vec3::splat(1.0));
    }
}
