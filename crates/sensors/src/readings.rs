//! One sample of every onboard sensor.

use pidpiper_math::Vec3;

/// A single synchronized sample of the RV's sensor suite.
///
/// This is the mutation point for the attack engine: physical attacks
/// (GPS spoofing, gyroscope tampering, …) add bias to fields of this struct
/// *after* it leaves the sensor simulation and *before* it reaches the
/// estimator — exactly the signal path real spoofers corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SensorReadings {
    /// GPS position fix (ENU metres).
    pub gps_position: Vec3,
    /// GPS velocity (ENU m/s).
    pub gps_velocity: Vec3,
    /// Barometric altitude (m).
    pub baro_altitude: f64,
    /// Gyroscope body rates (rad/s).
    pub gyro: Vec3,
    /// Accelerometer specific force in the body frame (m/s^2); reads
    /// `(0, 0, +g)` at rest.
    pub accel: Vec3,
    /// Magnetometer heading (rad, world yaw).
    pub mag_heading: f64,
}

impl SensorReadings {
    /// Returns `true` when every field is finite.
    pub fn is_finite(&self) -> bool {
        self.gps_position.is_finite()
            && self.gps_velocity.is_finite()
            && self.baro_altitude.is_finite()
            && self.gyro.is_finite()
            && self.accel.is_finite()
            && self.mag_heading.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_finite() {
        assert!(SensorReadings::default().is_finite());
    }

    #[test]
    fn nan_is_caught() {
        let r = SensorReadings {
            baro_altitude: f64::NAN,
            ..SensorReadings::default()
        };
        assert!(!r.is_finite());
        let mut r2 = SensorReadings::default();
        r2.gyro.y = f64::INFINITY;
        assert!(!r2.is_finite());
    }
}
