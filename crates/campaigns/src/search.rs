//! The seeded adaptive attacker: a (1+λ) evolutionary hill-climb over a
//! campaign's declared parameter space, with a hard stealth constraint.
//!
//! Every candidate is one full mission simulation. A candidate is
//! **rejected** — fitness forced to −∞ — unless it stays stealthy: its
//! peak normalized monitor statistic must remain below the campaign's
//! `stealth-margin` (1.0 = the detection threshold) *and* the defense must
//! never activate recovery. Among stealthy candidates the attacker
//! maximizes the mission's ground-truth `max_path_deviation` — the
//! worst-case a defender cares about precisely because the monitor never
//! fired.
//!
//! Reproducibility contract: the whole search is a pure function of
//! `(campaign, strategy, defense template)`. Child mutations draw from
//! per-child RNGs seeded by `splitmix(campaign.seed, generation, child)`,
//! candidates are evaluated with [`MissionRunner::par_run_missions_with_jobs`]
//! (results in spec order, bit-identical for any worker count), and ties
//! resolve to the lowest child index — so 1 worker and N workers return
//! the same winning parameter vector, bit for bit.

use crate::compile::CompiledCampaign;
use crate::dsl::{Campaign, CampaignError};
use pidpiper_missions::{
    configured_jobs, Defense, Fingerprint, MissionResult, MissionRunner, StrategyKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-candidate evaluation record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEval {
    /// Ground-truth worst-case cross-track deviation (m) — the objective.
    pub max_path_deviation: f64,
    /// Ground-truth deviation at mission end (m).
    pub final_deviation: f64,
    /// Peak normalized monitor statistic over the mission (1.0 =
    /// detection threshold).
    pub peak_statistic: f64,
    /// Recovery activations by the defense (any > 0 breaks stealth).
    pub recovery_activations: usize,
    /// The mission trace's FNV fingerprint (for replay verification).
    pub trace_fingerprint: u64,
}

impl CandidateEval {
    fn from_result(r: &MissionResult) -> CandidateEval {
        let peak = r
            .trace
            .records()
            .iter()
            .fold(0.0_f64, |acc, rec| acc.max(rec.monitor_statistic));
        CandidateEval {
            max_path_deviation: r.max_path_deviation,
            final_deviation: r.final_deviation,
            peak_statistic: peak,
            recovery_activations: r.recovery_activations,
            trace_fingerprint: r.trace.fingerprint(),
        }
    }

    /// Whether the candidate stayed under the stealth ceiling.
    pub fn stealthy(&self, margin: f64) -> bool {
        self.peak_statistic < margin && self.recovery_activations == 0
    }

    fn fitness(&self, margin: f64) -> f64 {
        if self.stealthy(margin) {
            self.max_path_deviation
        } else {
            f64::NEG_INFINITY
        }
    }
}

/// The result of a campaign search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The winning parameter vector (declaration order).
    pub best_params: Vec<f64>,
    /// The winner's evaluation.
    pub best: CandidateEval,
    /// Whether the winner satisfied the stealth constraint (false only
    /// when *no* candidate — parent included — ever stayed stealthy).
    pub winner_stealthy: bool,
    /// FNV fingerprint of the winning parameter vector's bits — the
    /// value the determinism gate compares across worker counts.
    pub params_fingerprint: u64,
    /// Total mission simulations performed.
    pub evaluations: usize,
    /// Candidates rejected by the stealth constraint.
    pub rejected_stealth: usize,
    /// The stealth ceiling the search enforced.
    pub stealth_margin: f64,
}

/// Fingerprints a parameter vector bit-for-bit.
pub fn params_fingerprint(params: &[f64]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.mix_u64(params.len() as u64);
    for &v in params {
        fp.mix_f64(v);
    }
    fp.value()
}

/// splitmix64-style finalizer: decorrelates `(seed, generation, child)`
/// into one well-mixed child seed.
fn derive_seed(seed: u64, generation: u64, child: u64) -> u64 {
    let mut z = seed
        .wrapping_add(generation.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(child.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mutates the parent into one child: each dimension is reset uniformly
/// within its bounds with probability 0.15, otherwise nudged by a uniform
/// step of up to ±25 % of the bound span, then clamped.
fn mutate(parent: &[f64], bounds: &[(f64, f64)], rng: &mut StdRng) -> Vec<f64> {
    parent
        .iter()
        .zip(bounds)
        .map(|(&v, &(lo, hi))| {
            let span = hi - lo;
            if span <= 0.0 {
                return lo;
            }
            if rng.gen_bool(0.15) {
                rng.gen_range(lo..hi)
            } else {
                (v + rng.gen_range(-0.25..0.25) * span).clamp(lo, hi)
            }
        })
        .collect()
}

fn evaluate_batch<F>(
    jobs: usize,
    campaign: &Campaign,
    strategy: StrategyKind,
    candidates: &[Vec<f64>],
    defense_for: &F,
) -> Result<Vec<CandidateEval>, CampaignError>
where
    F: Fn(usize) -> Box<dyn Defense + Send> + Sync,
{
    let compiled: Vec<CompiledCampaign> = candidates
        .iter()
        .map(|p| campaign.compile(p))
        .collect::<Result<_, _>>()?;
    let specs: Vec<_> = compiled.iter().map(|c| c.spec(strategy)).collect();
    let results = MissionRunner::par_run_missions_with_jobs(jobs, &specs, defense_for);
    Ok(results.iter().map(CandidateEval::from_result).collect())
}

/// Runs the (1+λ) search on `PIDPIPER_JOBS` workers.
///
/// `defense_for(i)` must build a *fresh* defense for evaluation slot `i`
/// of the current batch — typically a clone of one fitted template, so
/// every candidate faces an identical defender.
pub fn search<F>(
    campaign: &Campaign,
    strategy: StrategyKind,
    defense_for: F,
) -> Result<SearchOutcome, CampaignError>
where
    F: Fn(usize) -> Box<dyn Defense + Send> + Sync,
{
    search_with_jobs(configured_jobs(), campaign, strategy, defense_for)
}

/// [`search`] with an explicit worker count (the determinism tests compare
/// `jobs = 1` against `jobs = N` without racing on env vars).
pub fn search_with_jobs<F>(
    jobs: usize,
    campaign: &Campaign,
    strategy: StrategyKind,
    defense_for: F,
) -> Result<SearchOutcome, CampaignError>
where
    F: Fn(usize) -> Box<dyn Defense + Send> + Sync,
{
    let bounds = campaign.bounds();
    let margin = campaign.stealth_margin;
    let mut parent = campaign.initial_params();
    let parent_evals = evaluate_batch(jobs, campaign, strategy, &[parent.clone()], &defense_for)?;
    let mut best = match parent_evals.first() {
        Some(e) => *e,
        None => {
            // Unreachable: a one-candidate batch yields one result; keep
            // the lib panic-free anyway.
            return Err(CampaignError::WrongArity {
                expected: 1,
                got: 0,
            });
        }
    };
    let mut evaluations = 1;
    let mut rejected_stealth = usize::from(!best.stealthy(margin));
    let mut best_fitness = best.fitness(margin);

    // Zero searchable dimensions degenerates to the parent evaluation:
    // the campaign *is* its only candidate.
    if !bounds.is_empty() {
        for generation in 0..campaign.search.generations {
            let children: Vec<Vec<f64>> = (0..campaign.search.lambda)
                .map(|child| {
                    let mut rng = StdRng::seed_from_u64(derive_seed(
                        campaign.seed,
                        generation as u64,
                        child as u64,
                    ));
                    mutate(&parent, &bounds, &mut rng)
                })
                .collect();
            let evals = evaluate_batch(jobs, campaign, strategy, &children, &defense_for)?;
            evaluations += evals.len();
            // Selection in child order: strict improvement over the
            // incumbent, ties to the lowest index — completion order
            // never participates.
            for (child, eval) in children.iter().zip(&evals) {
                if !eval.stealthy(margin) {
                    rejected_stealth += 1;
                }
                let fitness = eval.fitness(margin);
                if fitness > best_fitness {
                    best_fitness = fitness;
                    best = *eval;
                    parent = child.clone();
                }
            }
        }
    }

    let winner_stealthy = best.stealthy(margin);
    Ok(SearchOutcome {
        params_fingerprint: params_fingerprint(&parent),
        best_params: parent,
        best,
        winner_stealthy,
        evaluations,
        rejected_stealth,
        stealth_margin: margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_missions::NoDefense;

    const SRC: &str = "\
campaign v1
name search-check
vehicle arducopter
mission straight 40 5
seed 11
stealth-margin 0.95
search generations 2 lambda 3
phase drift gps 0 6 0 start 8 envelope 5 12 3
param drift.bias.y 1 14
param drift.envelope.ramp 3 10
";

    fn campaign() -> Campaign {
        Campaign::from_text(SRC).expect("test campaign parses")
    }

    #[test]
    fn derive_seed_decorrelates_coordinates() {
        let a = derive_seed(11, 0, 0);
        let b = derive_seed(11, 0, 1);
        let c = derive_seed(11, 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, derive_seed(11, 0, 0), "pure function of inputs");
    }

    #[test]
    fn mutation_respects_bounds() {
        let bounds = vec![(1.0, 14.0), (3.0, 10.0)];
        let parent = vec![6.0, 5.0];
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let child = mutate(&parent, &bounds, &mut rng);
            for (v, (lo, hi)) in child.iter().zip(&bounds) {
                assert!(*v >= *lo && *v <= *hi, "child {v} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn search_is_reproducible_across_worker_counts() {
        let c = campaign();
        let factory = |_: usize| -> Box<dyn Defense + Send> { Box::new(NoDefense::new()) };
        let serial = search_with_jobs(1, &c, StrategyKind::Algorithm1, factory)
            .expect("serial search runs");
        let parallel = search_with_jobs(4, &c, StrategyKind::Algorithm1, factory)
            .expect("parallel search runs");
        assert_eq!(serial.best_params, parallel.best_params);
        assert_eq!(serial.params_fingerprint, parallel.params_fingerprint);
        assert_eq!(serial.best.trace_fingerprint, parallel.best.trace_fingerprint);
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.rejected_stealth, parallel.rejected_stealth);
        // And the whole thing again from scratch: same seed, same answer.
        let again = search_with_jobs(1, &c, StrategyKind::Algorithm1, factory)
            .expect("repeat search runs");
        assert_eq!(serial, again);
    }

    #[test]
    fn search_improves_or_matches_the_declared_operating_point() {
        let c = campaign();
        let factory = |_: usize| -> Box<dyn Defense + Send> { Box::new(NoDefense::new()) };
        let outcome =
            search_with_jobs(1, &c, StrategyKind::Algorithm1, factory).expect("search runs");
        // NoDefense's monitor statistic is always 0, so everything is
        // stealthy and the search purely maximizes deviation.
        assert!(outcome.winner_stealthy);
        assert_eq!(outcome.rejected_stealth, 0);
        let baseline = evaluate_batch(
            1,
            &c,
            StrategyKind::Algorithm1,
            &[c.initial_params()],
            &factory,
        )
        .expect("baseline evaluates");
        assert!(
            outcome.best.max_path_deviation >= baseline[0].max_path_deviation,
            "selection must never regress below the parent"
        );
        assert_eq!(
            outcome.evaluations,
            1 + c.search.generations * c.search.lambda
        );
    }

    #[test]
    fn zero_dimension_campaign_degenerates_to_one_evaluation() {
        let src = "\
campaign v1
name fixed
vehicle arducopter
mission straight 30 5
seed 3
phase a gps 0 5 0 start 8
";
        let c = Campaign::from_text(src).expect("parses");
        let factory = |_: usize| -> Box<dyn Defense + Send> { Box::new(NoDefense::new()) };
        let outcome =
            search_with_jobs(1, &c, StrategyKind::Algorithm1, factory).expect("search runs");
        assert_eq!(outcome.evaluations, 1);
        assert!(outcome.best_params.is_empty());
    }

    #[test]
    fn params_fingerprint_is_bit_sensitive() {
        let a = params_fingerprint(&[1.0, 2.0]);
        let b = params_fingerprint(&[1.0, f64::from_bits(2.0_f64.to_bits() + 1)]);
        let c = params_fingerprint(&[1.0, 2.0]);
        assert_eq!(a, c);
        assert_ne!(a, b);
    }
}
