//! `pidpiper-campaign`: validate and run adversarial attack campaigns.
//!
//! ```text
//! pidpiper-campaign check <file>   # parse + lower, report, exit 0/2
//! pidpiper-campaign run <file>     # train-or-load defense, run search
//! ```
//!
//! Environment knobs (see OPERATIONS.md):
//!
//! - `PIDPIPER_CAMPAIGN_GENERATIONS` / `PIDPIPER_CAMPAIGN_LAMBDA` —
//!   override the campaign's search budget (e.g. for CI smoke runs);
//! - `PIDPIPER_CAMPAIGN_STRATEGY` — recovery strategy to attack
//!   (`algorithm1` | `spec-compliance` | `diagnosis-guided`);
//! - `PIDPIPER_JOBS` — worker count (results are identical at any value);
//! - `PIDPIPER_SCALE` — training scale for the defense model.

use pidpiper_campaigns::{
    deployed_pidpiper, search, Campaign, CompiledCampaign, TrainScale,
};
use pidpiper_missions::{Defense, MissionAttack, StrategyKind};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: pidpiper-campaign <check|run> <campaign-file>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, file) = match (args.get(1), args.get(2)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return usage(),
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::from(2);
        }
    };
    let campaign = match Campaign::from_text(&src) {
        Ok(c) => c,
        Err(err) => {
            eprintln!("{}", err.at(file));
            return ExitCode::from(2);
        }
    };
    match cmd {
        "check" => check(file, &campaign),
        "run" => run(file, campaign),
        _ => usage(),
    }
}

/// Validates the campaign end-to-end (parse already succeeded; lowering
/// catches the rest) and prints a one-screen summary — the analyzer-style
/// `--check` UX: exit 0 quietly-ish, exit 2 with `file:line: message`.
fn check(file: &str, campaign: &Campaign) -> ExitCode {
    let compiled = match campaign.compile_default() {
        Ok(c) => c,
        Err(err) => {
            eprintln!("{}", err.at(file));
            return ExitCode::from(2);
        }
    };
    println!("{file}: ok");
    println!("  name            {}", campaign.name);
    println!("  vehicle         {}", campaign.vehicle.name());
    println!("  seed            {}", campaign.seed);
    println!("  stealth margin  {}", campaign.stealth_margin);
    println!(
        "  search          {} generations x {} children",
        campaign.search.generations, campaign.search.lambda
    );
    println!(
        "  program         {} phase(s), {} fault(s), {} searchable dim(s)",
        compiled.attacks.len(),
        compiled.faults.len(),
        campaign.dimensions()
    );
    for (decl, (lo, hi)) in campaign.params.iter().zip(campaign.bounds()) {
        println!("    param {} in [{lo}, {hi}]", decl.target());
    }
    ExitCode::SUCCESS
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok().filter(|&n| n > 0)
}

fn run(file: &str, mut campaign: Campaign) -> ExitCode {
    if let Some(g) = env_usize("PIDPIPER_CAMPAIGN_GENERATIONS") {
        campaign.search.generations = g;
    }
    if let Some(l) = env_usize("PIDPIPER_CAMPAIGN_LAMBDA") {
        campaign.search.lambda = l;
    }
    let strategy = match std::env::var("PIDPIPER_CAMPAIGN_STRATEGY") {
        Ok(s) => match StrategyKind::parse(s.trim()) {
            Some(k) => k,
            None => {
                eprintln!("unknown PIDPIPER_CAMPAIGN_STRATEGY `{s}`");
                return ExitCode::from(2);
            }
        },
        Err(_) => StrategyKind::default(),
    };
    if let Err(err) = campaign.compile_default() {
        eprintln!("{}", err.at(file));
        return ExitCode::from(2);
    }
    let defense = deployed_pidpiper(campaign.vehicle, TrainScale::from_env());
    let outcome = match search(&campaign, strategy, |_| {
        Box::new(defense.clone()) as Box<dyn Defense + Send>
    }) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("{}", err.at(file));
            return ExitCode::from(2);
        }
    };
    println!("campaign  {} ({})", campaign.name, file);
    println!("vehicle   {}", campaign.vehicle.name());
    println!("strategy  {}", strategy.name());
    println!(
        "search    {} evaluations, {} rejected by the stealth gate",
        outcome.evaluations, outcome.rejected_stealth
    );
    println!(
        "winner    max deviation {:.2} m, final {:.2} m, peak statistic {:.3} (< {} required)",
        outcome.best.max_path_deviation,
        outcome.best.final_deviation,
        outcome.best.peak_statistic,
        outcome.stealth_margin
    );
    println!(
        "stealthy  {} (recovery activations: {})",
        outcome.winner_stealthy, outcome.best.recovery_activations
    );
    for (decl, v) in campaign.params.iter().zip(&outcome.best_params) {
        println!("  {} = {v}", decl.target());
    }
    println!(
        "replay    params fingerprint {:016x}, trace fingerprint {:016x}",
        outcome.params_fingerprint, outcome.best.trace_fingerprint
    );
    if let Ok(compiled) = campaign.compile(&outcome.best_params) {
        print_program(&compiled);
    }
    if outcome.winner_stealthy {
        ExitCode::SUCCESS
    } else {
        eprintln!("warning: no stealthy candidate found under margin {}", outcome.stealth_margin);
        ExitCode::from(1)
    }
}

fn print_program(compiled: &CompiledCampaign) {
    println!("program   ({} attack phase(s))", compiled.attacks.len());
    for a in &compiled.attacks {
        match a {
            MissionAttack::Scheduled(atk) => {
                println!("  scheduled {:?} on {:?}", atk.kind, atk.schedule);
            }
            MissionAttack::Enveloped(env) => {
                println!(
                    "  enveloped {:?} on {:?} envelope {:?}",
                    env.kind, env.schedule, env.envelope
                );
            }
            other => println!("  {other:?}"),
        }
    }
}
