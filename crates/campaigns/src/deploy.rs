//! Train-or-load support for the `pidpiper-campaign` binary: the deployed
//! PID-Piper defense a campaign search attacks.
//!
//! Shares the bench harness's on-disk model cache byte-for-byte — same
//! cache version, same key format (`v8-<RV>-<Scale>.pidpiper`), same
//! refuse-and-retrain policy on corrupt artifacts — so `pidpiper-campaign`
//! and `pidpiper-bench` reuse each other's trained models instead of
//! paying for training twice.

use pidpiper_core::{artifact, PidPiper, Trainer, TrainerConfig};
use pidpiper_missions::{MissionPlan, MissionRunner, MissionSpec, NoDefense, RunnerConfig, Trace};
use pidpiper_sim::{RvId, VehicleKind};
use std::fs;
use std::path::PathBuf;

/// The standard trace-collection seed (offset per mission; matches the
/// bench harness).
pub const TRACE_SEED: u64 = 500;

/// Cache version — must track the bench harness's `CACHE_VERSION` so the
/// two binaries share artifacts.
const CACHE_VERSION: &str = "v8";

/// Training scale, selected by `PIDPIPER_SCALE` (mirrors the bench
/// harness's `Scale`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainScale {
    /// Reduced mission geometry for fast runs (the default).
    Quick,
    /// Paper-scale geometry.
    Full,
}

impl TrainScale {
    /// Reads `PIDPIPER_SCALE` (default quick).
    pub fn from_env() -> TrainScale {
        match std::env::var("PIDPIPER_SCALE").as_deref() {
            Ok("full") => TrainScale::Full,
            _ => TrainScale::Quick,
        }
    }

    /// Geometry scale applied to training-mission distances.
    pub fn geometry(self) -> f64 {
        match self {
            TrainScale::Quick => 0.5,
            TrainScale::Full => 1.0,
        }
    }
}

/// The workspace root (binaries run with the package directory as cwd, so
/// relative paths would land under `crates/campaigns/`).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn cache_dir() -> PathBuf {
    let dir = workspace_root().join("target/pidpiper-cache");
    let _ = fs::create_dir_all(&dir);
    dir
}

fn models_dir() -> PathBuf {
    workspace_root().join("models")
}

/// Collects the Table-I attack-free training trace set for one RV (the
/// bench harness's `collect_traces`, reproduced here to avoid a circular
/// dependency on the bench crate).
pub fn training_traces(rv: RvId, scale: TrainScale) -> Vec<Trace> {
    let plans = MissionPlan::table1_missions(rv, 7, scale.geometry());
    let specs: Vec<MissionSpec> = plans
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            MissionSpec::clean(RunnerConfig::for_rv(rv).with_seed(TRACE_SEED + i as u64), p)
        })
        .collect();
    MissionRunner::par_run_missions(&specs, |_| Box::new(NoDefense::new()))
        .into_iter()
        .map(|r| r.trace)
        .collect()
}

/// Trains (or loads from the shared cache) the deployed PID-Piper for one
/// RV. A corrupt on-disk artifact is refused and retrained, never parsed
/// around.
pub fn deployed_pidpiper(rv: RvId, scale: TrainScale) -> PidPiper {
    let key = format!(
        "{}-{}-{:?}.pidpiper",
        CACHE_VERSION,
        rv.name().replace(' ', "_"),
        scale
    );
    let cache_path = cache_dir().join(&key);
    for candidate in [cache_path.clone(), models_dir().join(&key)] {
        match artifact::load_deployment(&candidate) {
            Ok((pp, integrity)) => {
                eprintln!(
                    "[campaign] loaded PID-Piper for {rv} from {} ({integrity:?})",
                    candidate.display()
                );
                return pp;
            }
            // A missing file is the normal first-run case.
            Err(artifact::ArtifactError::Io { .. }) => {}
            Err(err) => eprintln!(
                "[campaign] model at {} rejected ({err}); retraining",
                candidate.display()
            ),
        }
    }
    eprintln!("[campaign] training PID-Piper for {rv} (no cached model)");
    let traces = training_traces(rv, scale);
    let trainer = Trainer::new(TrainerConfig::default());
    let trained = trainer.train(&traces, rv.kind() == VehicleKind::Rover);
    if let Err(err) = artifact::save_deployment(&cache_path, &trained.pidpiper) {
        eprintln!(
            "[campaign] could not cache model at {}: {err}",
            cache_path.display()
        );
    }
    trained.pidpiper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_matches_the_bench_harness_format() {
        // The shared-cache contract: "v8-<RV with spaces underscored>-
        // <Scale:?>.pidpiper". Pin it so a drift from the harness's key
        // format (which would silently double training costs) fails here.
        assert_eq!(CACHE_VERSION, "v8");
        let rv = RvId::Px4Solo;
        assert_eq!(rv.name().replace(' ', "_"), "PX4_Solo");
    }

    #[test]
    fn scale_defaults_to_quick_geometry() {
        assert!(TrainScale::Quick.geometry() < TrainScale::Full.geometry());
    }

    #[test]
    fn workspace_root_is_two_levels_up() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "{}", root.display());
    }
}
