//! The campaign DSL: a line-oriented text format describing multi-phase,
//! multi-sensor attack programs and the parameter space an adaptive
//! attacker may search.
//!
//! Same idiom as `analyzer.boundaries` and the v3 deployment text format:
//! one declaration per line, `#` comments, whitespace-separated tokens, a
//! versioned `campaign v1` header, and typed errors carrying the offending
//! line number. A campaign file is the *entire* input of a search — the
//! pair `(campaign, seed)` reproduces a run bit-for-bit.
//!
//! ```text
//! campaign v1
//! name stealth-drift
//! vehicle arducopter
//! mission straight 60 5
//! seed 9001
//! stealth-margin 0.95
//! search generations 6 lambda 6
//!
//! # One attack phase per line: sensor, full-strength bias, schedule
//! # clauses and an optional ramp-hold-release envelope.
//! phase drift gps 0 10 0 start 8 envelope 6 30 4
//! phase wobble gyro 0.05 0 0 start 12 duty 3 5
//!
//! # Benign faults riding along (same schedule grammar).
//! fault blackout gps-dropout window 20 22
//!
//! # Searchable dimensions: `<phase>.<field> <lo> <hi>`, in file order.
//! param drift.bias.y 2 30
//! param drift.envelope.ramp 4 20
//! ```

use pidpiper_math::Vec3;
use pidpiper_sim::RvId;
use std::fmt;

/// A parse or validation failure, carrying the 1-based source line where
/// one exists. Render against a file name with [`CampaignError::at`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The first meaningful line was not a `campaign <version>` header.
    MissingHeader,
    /// The header named a version this parser does not speak.
    UnsupportedVersion {
        /// Line of the header.
        line: usize,
        /// The version token found.
        found: String,
    },
    /// A malformed line (unknown directive, wrong arity, bad number …).
    Syntax {
        /// Offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A single-occurrence key appeared twice.
    DuplicateKey {
        /// Line of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A required key never appeared.
    MissingKey {
        /// The absent key.
        key: String,
    },
    /// A `param` line referenced a phase or field that does not exist.
    UnknownParamTarget {
        /// Offending line.
        line: usize,
        /// The `<phase>.<field>` target as written.
        target: String,
    },
    /// A `param` line declared an empty or inverted `[lo, hi]` range.
    InvalidBounds {
        /// Offending line.
        line: usize,
        /// The `<phase>.<field>` target as written.
        target: String,
    },
    /// A parameter vector of the wrong length was supplied to `compile`.
    WrongArity {
        /// Dimensions the campaign declares.
        expected: usize,
        /// Dimensions supplied.
        got: usize,
    },
}

impl CampaignError {
    /// The source line the error points at, when it has one.
    pub fn line(&self) -> Option<usize> {
        match self {
            CampaignError::MissingHeader | CampaignError::MissingKey { .. } => None,
            CampaignError::WrongArity { .. } => None,
            CampaignError::UnsupportedVersion { line, .. }
            | CampaignError::Syntax { line, .. }
            | CampaignError::DuplicateKey { line, .. }
            | CampaignError::UnknownParamTarget { line, .. }
            | CampaignError::InvalidBounds { line, .. } => Some(*line),
        }
    }

    /// Renders the error as `<file>:<line>: <message>` (analyzer-style
    /// diagnostics; the line is omitted when the error has none).
    pub fn at(&self, file: &str) -> String {
        match self.line() {
            Some(line) => format!("{file}:{line}: {self}"),
            None => format!("{file}: {self}"),
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::MissingHeader => {
                write!(f, "missing `campaign v1` header")
            }
            CampaignError::UnsupportedVersion { found, .. } => {
                write!(f, "unsupported campaign version `{found}` (expected v1)")
            }
            CampaignError::Syntax { message, .. } => write!(f, "{message}"),
            CampaignError::DuplicateKey { key, .. } => {
                write!(f, "duplicate `{key}` declaration")
            }
            CampaignError::MissingKey { key } => {
                write!(f, "missing required `{key}` declaration")
            }
            CampaignError::UnknownParamTarget { target, .. } => {
                write!(f, "param target `{target}` does not match any phase field")
            }
            CampaignError::InvalidBounds { target, .. } => {
                write!(f, "param `{target}` has an empty [lo, hi] range")
            }
            CampaignError::WrongArity { expected, got } => {
                write!(f, "parameter vector has {got} dims, campaign declares {expected}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Which sensor a phase perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorTarget {
    /// GPS position fix (bias in ENU metres).
    Gps,
    /// Gyroscope body rates (bias in rad/s).
    Gyro,
    /// Accelerometer (bias in m/s², body frame).
    Accel,
    /// Barometric altitude (bias in metres; `x` component only).
    Baro,
    /// Magnetometer heading (bias in rad; `x` component only).
    Mag,
}

impl SensorTarget {
    /// The DSL token.
    pub fn token(self) -> &'static str {
        match self {
            SensorTarget::Gps => "gps",
            SensorTarget::Gyro => "gyro",
            SensorTarget::Accel => "accel",
            SensorTarget::Baro => "baro",
            SensorTarget::Mag => "mag",
        }
    }

    fn parse(tok: &str) -> Option<SensorTarget> {
        match tok {
            "gps" => Some(SensorTarget::Gps),
            "gyro" => Some(SensorTarget::Gyro),
            "accel" => Some(SensorTarget::Accel),
            "baro" => Some(SensorTarget::Baro),
            "mag" => Some(SensorTarget::Mag),
            _ => None,
        }
    }
}

/// A benign fault kind expressible in the DSL (the subset of
/// `pidpiper_faults::FaultKind` that takes no numeric arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultToken {
    /// GPS fix dropout (held last fix).
    GpsDropout,
    /// NaN bursts across the sensor bus.
    NanBurst,
    /// Frozen gyroscope.
    FrozenGyro,
}

impl FaultToken {
    /// The DSL token.
    pub fn token(self) -> &'static str {
        match self {
            FaultToken::GpsDropout => "gps-dropout",
            FaultToken::NanBurst => "nan-burst",
            FaultToken::FrozenGyro => "frozen-gyro",
        }
    }

    fn parse(tok: &str) -> Option<FaultToken> {
        match tok {
            "gps-dropout" => Some(FaultToken::GpsDropout),
            "nan-burst" => Some(FaultToken::NanBurst),
            "frozen-gyro" => Some(FaultToken::FrozenGyro),
            _ => None,
        }
    }
}

/// The mission a campaign flies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MissionDecl {
    /// `mission straight <distance> <altitude>`.
    Straight {
        /// Distance (m).
        distance: f64,
        /// Cruise altitude (m).
        altitude: f64,
    },
    /// `mission polygon <sides> <radius> <altitude>`.
    Polygon {
        /// Number of sides.
        sides: usize,
        /// Circumradius (m).
        radius: f64,
        /// Cruise altitude (m).
        altitude: f64,
    },
    /// `mission hover <altitude> <duration>`.
    Hover {
        /// Hover altitude (m).
        altitude: f64,
        /// Hover duration (s).
        duration: f64,
    },
}

/// When a phase or fault is active: the DSL's schedule clauses, kept in
/// declaration form so printing round-trips exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScheduleDecl {
    /// `start <t>` — continuous from `t` (intermittent when `duty` set).
    pub start: Option<f64>,
    /// `duty <on> <off>` — duty-cycled bursts (requires `start`).
    pub duty: Option<(f64, f64)>,
    /// `window <a> <b>` clauses, in declaration order.
    pub windows: Vec<(f64, f64)>,
}

/// One attack phase: a sensor, a full-strength bias, a schedule and an
/// optional ramp-hold-release envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDecl {
    /// Phase identifier (target of `param` lines).
    pub id: String,
    /// The sensor the phase perturbs.
    pub sensor: SensorTarget,
    /// Full-strength bias (scalar sensors use the `x` component).
    pub bias: Vec3,
    /// Activation schedule.
    pub schedule: ScheduleDecl,
    /// `envelope <ramp> <hold> <release>` gain shaping, if any.
    pub envelope: Option<(f64, f64, f64)>,
}

/// One benign fault riding along with the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDecl {
    /// Fault identifier.
    pub id: String,
    /// What goes wrong.
    pub kind: FaultToken,
    /// When it goes wrong.
    pub schedule: ScheduleDecl,
}

/// A tunable field of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamField {
    /// `bias.x`.
    BiasX,
    /// `bias.y`.
    BiasY,
    /// `bias.z`.
    BiasZ,
    /// `start`.
    Start,
    /// `duty.on` (requires a `duty` clause on the phase).
    DutyOn,
    /// `duty.off` (requires a `duty` clause on the phase).
    DutyOff,
    /// `envelope.ramp` (requires an `envelope` clause on the phase).
    EnvelopeRamp,
    /// `envelope.hold` (requires an `envelope` clause on the phase).
    EnvelopeHold,
    /// `envelope.release` (requires an `envelope` clause on the phase).
    EnvelopeRelease,
}

impl ParamField {
    /// The DSL token (the part after `<phase>.`).
    pub fn token(self) -> &'static str {
        match self {
            ParamField::BiasX => "bias.x",
            ParamField::BiasY => "bias.y",
            ParamField::BiasZ => "bias.z",
            ParamField::Start => "start",
            ParamField::DutyOn => "duty.on",
            ParamField::DutyOff => "duty.off",
            ParamField::EnvelopeRamp => "envelope.ramp",
            ParamField::EnvelopeHold => "envelope.hold",
            ParamField::EnvelopeRelease => "envelope.release",
        }
    }

    fn parse(tok: &str) -> Option<ParamField> {
        match tok {
            "bias.x" => Some(ParamField::BiasX),
            "bias.y" => Some(ParamField::BiasY),
            "bias.z" => Some(ParamField::BiasZ),
            "start" => Some(ParamField::Start),
            "duty.on" => Some(ParamField::DutyOn),
            "duty.off" => Some(ParamField::DutyOff),
            "envelope.ramp" => Some(ParamField::EnvelopeRamp),
            "envelope.hold" => Some(ParamField::EnvelopeHold),
            "envelope.release" => Some(ParamField::EnvelopeRelease),
            _ => None,
        }
    }
}

/// One searchable dimension: a phase field and its `[lo, hi]` bounds.
/// File order defines the parameter-vector order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// The phase whose field is tunable.
    pub phase: String,
    /// Which field.
    pub field: ParamField,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl ParamDecl {
    /// The `<phase>.<field>` target as written in the DSL.
    pub fn target(&self) -> String {
        format!("{}.{}", self.phase, self.field.token())
    }
}

/// The adaptive attacker's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchDecl {
    /// (1+λ) generations to run.
    pub generations: usize,
    /// Children per generation (λ).
    pub lambda: usize,
}

impl Default for SearchDecl {
    fn default() -> Self {
        SearchDecl {
            generations: 6,
            lambda: 6,
        }
    }
}

/// A parsed campaign: the complete, seeded description of an attack
/// program and its searchable parameter space.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (used in reports and output file names).
    pub name: String,
    /// The vehicle under attack.
    pub vehicle: RvId,
    /// The mission flown.
    pub mission: MissionDecl,
    /// Seed for sensor noise, fault RNG and the attacker's mutations.
    pub seed: u64,
    /// Stealth ceiling as a fraction of the detection threshold: a
    /// candidate whose peak normalized CUSUM statistic reaches this value
    /// (or that triggers recovery at all) is rejected. `1.0` = detection.
    pub stealth_margin: f64,
    /// Search budget.
    pub search: SearchDecl,
    /// Attack phases, in file order (the deterministic stacking order).
    pub phases: Vec<PhaseDecl>,
    /// Benign faults, in file order.
    pub faults: Vec<FaultDecl>,
    /// Searchable dimensions, in file order.
    pub params: Vec<ParamDecl>,
}

/// The default stealth ceiling (fraction of the detection threshold).
pub const DEFAULT_STEALTH_MARGIN: f64 = 0.95;

fn syntax(line: usize, message: impl Into<String>) -> CampaignError {
    CampaignError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_f64(line: usize, tok: &str, what: &str) -> Result<f64, CampaignError> {
    let v: f64 = tok
        .parse()
        .map_err(|_| syntax(line, format!("{what}: expected a number, got `{tok}`")))?;
    if !v.is_finite() {
        return Err(syntax(line, format!("{what}: `{tok}` is not finite")));
    }
    Ok(v)
}

fn parse_usize(line: usize, tok: &str, what: &str) -> Result<usize, CampaignError> {
    tok.parse()
        .map_err(|_| syntax(line, format!("{what}: expected a count, got `{tok}`")))
}

/// A parsed schedule plus the optional `(ramp, hold, release)` envelope.
type ClauseParse = (ScheduleDecl, Option<(f64, f64, f64)>);

/// Parses `start`/`duty`/`window` clauses from a token stream.
fn parse_schedule_clauses(line: usize, toks: &[&str]) -> Result<ClauseParse, CampaignError> {
    let mut decl = ScheduleDecl::default();
    let mut envelope = None;
    let mut i = 0;
    while i < toks.len() {
        match toks[i] {
            "start" => {
                if decl.start.is_some() {
                    return Err(syntax(line, "duplicate `start` clause"));
                }
                let t = toks
                    .get(i + 1)
                    .ok_or_else(|| syntax(line, "`start` needs a time"))?;
                decl.start = Some(parse_f64(line, t, "start time")?);
                i += 2;
            }
            "duty" => {
                if decl.duty.is_some() {
                    return Err(syntax(line, "duplicate `duty` clause"));
                }
                if i + 2 >= toks.len() {
                    return Err(syntax(line, "`duty` needs <on> <off> durations"));
                }
                let on = parse_f64(line, toks[i + 1], "duty on")?;
                let off = parse_f64(line, toks[i + 2], "duty off")?;
                decl.duty = Some((on, off));
                i += 3;
            }
            "window" => {
                if i + 2 >= toks.len() {
                    return Err(syntax(line, "`window` needs <start> <end> times"));
                }
                let a = parse_f64(line, toks[i + 1], "window start")?;
                let b = parse_f64(line, toks[i + 2], "window end")?;
                decl.windows.push((a, b));
                i += 3;
            }
            "envelope" => {
                if envelope.is_some() {
                    return Err(syntax(line, "duplicate `envelope` clause"));
                }
                if i + 3 >= toks.len() {
                    return Err(syntax(line, "`envelope` needs <ramp> <hold> <release>"));
                }
                let r = parse_f64(line, toks[i + 1], "envelope ramp")?;
                let h = parse_f64(line, toks[i + 2], "envelope hold")?;
                let rel = parse_f64(line, toks[i + 3], "envelope release")?;
                envelope = Some((r, h, rel));
                i += 4;
            }
            other => {
                return Err(syntax(line, format!("unknown schedule clause `{other}`")));
            }
        }
    }
    if decl.duty.is_some() && decl.start.is_none() {
        return Err(syntax(line, "`duty` requires a `start` clause"));
    }
    if decl.start.is_none() && decl.windows.is_empty() {
        return Err(syntax(line, "schedule needs `start` or at least one `window`"));
    }
    Ok((decl, envelope))
}

/// The vehicle tokens the DSL accepts, with their RV mapping.
pub const VEHICLE_TOKENS: [(&str, RvId); 6] = [
    ("arducopter", RvId::ArduCopter),
    ("px4solo", RvId::Px4Solo),
    ("ardurover", RvId::ArduRover),
    ("pixhawk", RvId::PixhawkDrone),
    ("skyviper", RvId::SkyViper),
    ("aionr1", RvId::AionR1),
];

/// The DSL token for a vehicle.
pub fn vehicle_token(rv: RvId) -> &'static str {
    match VEHICLE_TOKENS.iter().find(|(_, id)| *id == rv) {
        Some((tok, _)) => tok,
        // RvId is a closed enum fully covered by VEHICLE_TOKENS.
        None => "arducopter",
    }
}

impl Campaign {
    /// Parses a campaign from its text form.
    pub fn from_text(src: &str) -> Result<Campaign, CampaignError> {
        let mut name: Option<(usize, String)> = None;
        let mut vehicle: Option<RvId> = None;
        let mut mission: Option<MissionDecl> = None;
        let mut seed: Option<u64> = None;
        let mut stealth_margin: Option<f64> = None;
        let mut search: Option<SearchDecl> = None;
        let mut phases: Vec<PhaseDecl> = Vec::new();
        let mut faults: Vec<FaultDecl> = Vec::new();
        let mut params: Vec<(usize, ParamDecl)> = Vec::new();
        let mut header_seen = false;

        for (idx, raw) in src.lines().enumerate() {
            let line = idx + 1;
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = text.split_whitespace().collect();
            if !header_seen {
                if toks[0] != "campaign" {
                    return Err(CampaignError::MissingHeader);
                }
                match toks.get(1) {
                    Some(&"v1") if toks.len() == 2 => header_seen = true,
                    Some(found) => {
                        return Err(CampaignError::UnsupportedVersion {
                            line,
                            found: (*found).to_string(),
                        })
                    }
                    None => return Err(CampaignError::MissingHeader),
                }
                continue;
            }
            let dup = |line: usize, key: &str| CampaignError::DuplicateKey {
                line,
                key: key.to_string(),
            };
            match toks[0] {
                "name" => {
                    if name.is_some() {
                        return Err(dup(line, "name"));
                    }
                    if toks.len() != 2 {
                        return Err(syntax(line, "usage: name <identifier>"));
                    }
                    name = Some((line, toks[1].to_string()));
                }
                "vehicle" => {
                    if vehicle.is_some() {
                        return Err(dup(line, "vehicle"));
                    }
                    let tok = toks
                        .get(1)
                        .ok_or_else(|| syntax(line, "usage: vehicle <name>"))?;
                    vehicle = Some(
                        VEHICLE_TOKENS
                            .iter()
                            .find(|(t, _)| t == tok)
                            .map(|(_, id)| *id)
                            .ok_or_else(|| {
                                syntax(line, format!("unknown vehicle `{tok}`"))
                            })?,
                    );
                }
                "mission" => {
                    if mission.is_some() {
                        return Err(dup(line, "mission"));
                    }
                    mission = Some(match toks.get(1) {
                        Some(&"straight") if toks.len() == 4 => MissionDecl::Straight {
                            distance: parse_f64(line, toks[2], "distance")?,
                            altitude: parse_f64(line, toks[3], "altitude")?,
                        },
                        Some(&"polygon") if toks.len() == 5 => {
                            let sides = parse_usize(line, toks[2], "sides")?;
                            if sides < 3 {
                                return Err(syntax(line, "polygons need at least 3 sides"));
                            }
                            MissionDecl::Polygon {
                                sides,
                                radius: parse_f64(line, toks[3], "radius")?,
                                altitude: parse_f64(line, toks[4], "altitude")?,
                            }
                        }
                        Some(&"hover") if toks.len() == 4 => MissionDecl::Hover {
                            altitude: parse_f64(line, toks[2], "altitude")?,
                            duration: parse_f64(line, toks[3], "duration")?,
                        },
                        _ => {
                            return Err(syntax(
                                line,
                                "usage: mission straight <dist> <alt> | \
                                 polygon <sides> <radius> <alt> | hover <alt> <secs>",
                            ))
                        }
                    });
                }
                "seed" => {
                    if seed.is_some() {
                        return Err(dup(line, "seed"));
                    }
                    let tok = toks
                        .get(1)
                        .ok_or_else(|| syntax(line, "usage: seed <u64>"))?;
                    seed = Some(
                        tok.parse()
                            .map_err(|_| syntax(line, format!("bad seed `{tok}`")))?,
                    );
                }
                "stealth-margin" => {
                    if stealth_margin.is_some() {
                        return Err(dup(line, "stealth-margin"));
                    }
                    let tok = toks
                        .get(1)
                        .ok_or_else(|| syntax(line, "usage: stealth-margin <frac>"))?;
                    let m = parse_f64(line, tok, "stealth margin")?;
                    if m <= 0.0 {
                        return Err(syntax(line, "stealth margin must be positive"));
                    }
                    stealth_margin = Some(m);
                }
                "search" => {
                    if search.is_some() {
                        return Err(dup(line, "search"));
                    }
                    if toks.len() != 5 || toks[1] != "generations" || toks[3] != "lambda" {
                        return Err(syntax(
                            line,
                            "usage: search generations <n> lambda <n>",
                        ));
                    }
                    let generations = parse_usize(line, toks[2], "generations")?;
                    let lambda = parse_usize(line, toks[4], "lambda")?;
                    if generations == 0 || lambda == 0 {
                        return Err(syntax(line, "search budget must be nonzero"));
                    }
                    search = Some(SearchDecl {
                        generations,
                        lambda,
                    });
                }
                "phase" => {
                    if toks.len() < 6 {
                        return Err(syntax(
                            line,
                            "usage: phase <id> <sensor> <bx> <by> <bz> <schedule…>",
                        ));
                    }
                    let id = toks[1].to_string();
                    if phases.iter().any(|p: &PhaseDecl| p.id == id) {
                        return Err(dup(line, &format!("phase {id}")));
                    }
                    let sensor = SensorTarget::parse(toks[2])
                        .ok_or_else(|| syntax(line, format!("unknown sensor `{}`", toks[2])))?;
                    let bias = Vec3::new(
                        parse_f64(line, toks[3], "bias x")?,
                        parse_f64(line, toks[4], "bias y")?,
                        parse_f64(line, toks[5], "bias z")?,
                    );
                    let (schedule, envelope) = parse_schedule_clauses(line, &toks[6..])?;
                    phases.push(PhaseDecl {
                        id,
                        sensor,
                        bias,
                        schedule,
                        envelope,
                    });
                }
                "fault" => {
                    if toks.len() < 3 {
                        return Err(syntax(line, "usage: fault <id> <kind> <schedule…>"));
                    }
                    let id = toks[1].to_string();
                    if faults.iter().any(|f: &FaultDecl| f.id == id) {
                        return Err(dup(line, &format!("fault {id}")));
                    }
                    let kind = FaultToken::parse(toks[2])
                        .ok_or_else(|| syntax(line, format!("unknown fault `{}`", toks[2])))?;
                    let (schedule, envelope) = parse_schedule_clauses(line, &toks[3..])?;
                    if envelope.is_some() {
                        return Err(syntax(line, "faults do not take an `envelope`"));
                    }
                    faults.push(FaultDecl { id, kind, schedule });
                }
                "param" => {
                    if toks.len() != 4 {
                        return Err(syntax(line, "usage: param <phase>.<field> <lo> <hi>"));
                    }
                    let target = toks[1];
                    let (phase, field_tok) = target.split_once('.').ok_or_else(|| {
                        CampaignError::UnknownParamTarget {
                            line,
                            target: target.to_string(),
                        }
                    })?;
                    let field = ParamField::parse(field_tok).ok_or_else(|| {
                        CampaignError::UnknownParamTarget {
                            line,
                            target: target.to_string(),
                        }
                    })?;
                    let lo = parse_f64(line, toks[2], "param lo")?;
                    let hi = parse_f64(line, toks[3], "param hi")?;
                    params.push((
                        line,
                        ParamDecl {
                            phase: phase.to_string(),
                            field,
                            lo,
                            hi,
                        },
                    ));
                }
                other => {
                    return Err(syntax(line, format!("unknown directive `{other}`")));
                }
            }
        }

        if !header_seen {
            return Err(CampaignError::MissingHeader);
        }
        let missing = |key: &str| CampaignError::MissingKey {
            key: key.to_string(),
        };
        let (_, name) = name.ok_or_else(|| missing("name"))?;
        let vehicle = vehicle.ok_or_else(|| missing("vehicle"))?;
        let mission = mission.ok_or_else(|| missing("mission"))?;
        let seed = seed.ok_or_else(|| missing("seed"))?;
        if phases.is_empty() {
            return Err(missing("phase"));
        }

        // Validate param targets against the declared phases.
        for (line, p) in &params {
            let phase = phases.iter().find(|ph| ph.id == p.phase).ok_or_else(|| {
                CampaignError::UnknownParamTarget {
                    line: *line,
                    target: p.target(),
                }
            })?;
            let available = match p.field {
                ParamField::BiasX | ParamField::BiasY | ParamField::BiasZ => true,
                ParamField::Start => phase.schedule.start.is_some(),
                ParamField::DutyOn | ParamField::DutyOff => phase.schedule.duty.is_some(),
                ParamField::EnvelopeRamp
                | ParamField::EnvelopeHold
                | ParamField::EnvelopeRelease => phase.envelope.is_some(),
            };
            if !available {
                return Err(CampaignError::UnknownParamTarget {
                    line: *line,
                    target: p.target(),
                });
            }
            // `partial_cmp` so a NaN bound is rejected, not ordered past.
            let ordered = matches!(
                p.lo.partial_cmp(&p.hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if !ordered {
                return Err(CampaignError::InvalidBounds {
                    line: *line,
                    target: p.target(),
                });
            }
        }

        Ok(Campaign {
            name,
            vehicle,
            mission,
            seed,
            stealth_margin: stealth_margin.unwrap_or(DEFAULT_STEALTH_MARGIN),
            search: search.unwrap_or_default(),
            phases,
            faults,
            params: params.into_iter().map(|(_, p)| p).collect(),
        })
    }

    /// Prints the campaign in canonical text form.
    ///
    /// `from_text(to_text(c)) == c` for every valid campaign — the
    /// round-trip identity the proptests pin down.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("campaign v1\n");
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("vehicle {}\n", vehicle_token(self.vehicle)));
        match self.mission {
            MissionDecl::Straight { distance, altitude } => {
                out.push_str(&format!("mission straight {distance} {altitude}\n"));
            }
            MissionDecl::Polygon {
                sides,
                radius,
                altitude,
            } => {
                out.push_str(&format!("mission polygon {sides} {radius} {altitude}\n"));
            }
            MissionDecl::Hover { altitude, duration } => {
                out.push_str(&format!("mission hover {altitude} {duration}\n"));
            }
        }
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("stealth-margin {}\n", self.stealth_margin));
        out.push_str(&format!(
            "search generations {} lambda {}\n",
            self.search.generations, self.search.lambda
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "phase {} {} {} {} {}",
                p.id,
                p.sensor.token(),
                p.bias.x,
                p.bias.y,
                p.bias.z
            ));
            push_schedule(&mut out, &p.schedule);
            if let Some((r, h, rel)) = p.envelope {
                out.push_str(&format!(" envelope {r} {h} {rel}"));
            }
            out.push('\n');
        }
        for f in &self.faults {
            out.push_str(&format!("fault {} {}", f.id, f.kind.token()));
            push_schedule(&mut out, &f.schedule);
            out.push('\n');
        }
        for p in &self.params {
            out.push_str(&format!("param {} {} {}\n", p.target(), p.lo, p.hi));
        }
        out
    }

    /// The number of searchable dimensions.
    pub fn dimensions(&self) -> usize {
        self.params.len()
    }

    /// The `[lo, hi]` bounds of each dimension, in declaration order.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.params.iter().map(|p| (p.lo, p.hi)).collect()
    }

    /// The declared (written) value of each searchable field, clamped into
    /// its bounds — the adaptive attacker's starting point.
    pub fn initial_params(&self) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                let declared = self
                    .phases
                    .iter()
                    .find(|ph| ph.id == p.phase)
                    .map(|ph| read_field(ph, p.field))
                    .unwrap_or(p.lo);
                declared.clamp(p.lo, p.hi)
            })
            .collect()
    }
}

/// Reads the current value of a tunable field from a phase.
pub(crate) fn read_field(phase: &PhaseDecl, field: ParamField) -> f64 {
    match field {
        ParamField::BiasX => phase.bias.x,
        ParamField::BiasY => phase.bias.y,
        ParamField::BiasZ => phase.bias.z,
        ParamField::Start => phase.schedule.start.unwrap_or(0.0),
        ParamField::DutyOn => phase.schedule.duty.map(|(on, _)| on).unwrap_or(0.0),
        ParamField::DutyOff => phase.schedule.duty.map(|(_, off)| off).unwrap_or(0.0),
        ParamField::EnvelopeRamp => phase.envelope.map(|(r, _, _)| r).unwrap_or(0.0),
        ParamField::EnvelopeHold => phase.envelope.map(|(_, h, _)| h).unwrap_or(0.0),
        ParamField::EnvelopeRelease => phase.envelope.map(|(_, _, r)| r).unwrap_or(0.0),
    }
}

/// Writes a tunable field back into a phase (validation has already
/// guaranteed the clause exists).
pub(crate) fn write_field(phase: &mut PhaseDecl, field: ParamField, value: f64) {
    match field {
        ParamField::BiasX => phase.bias.x = value,
        ParamField::BiasY => phase.bias.y = value,
        ParamField::BiasZ => phase.bias.z = value,
        ParamField::Start => phase.schedule.start = Some(value),
        ParamField::DutyOn => {
            if let Some((_, off)) = phase.schedule.duty {
                phase.schedule.duty = Some((value, off));
            }
        }
        ParamField::DutyOff => {
            if let Some((on, _)) = phase.schedule.duty {
                phase.schedule.duty = Some((on, value));
            }
        }
        ParamField::EnvelopeRamp => {
            if let Some((_, h, rel)) = phase.envelope {
                phase.envelope = Some((value, h, rel));
            }
        }
        ParamField::EnvelopeHold => {
            if let Some((r, _, rel)) = phase.envelope {
                phase.envelope = Some((r, value, rel));
            }
        }
        ParamField::EnvelopeRelease => {
            if let Some((r, h, _)) = phase.envelope {
                phase.envelope = Some((r, h, value));
            }
        }
    }
}

fn push_schedule(out: &mut String, s: &ScheduleDecl) {
    if let Some(t) = s.start {
        out.push_str(&format!(" start {t}"));
    }
    if let Some((on, off)) = s.duty {
        out.push_str(&format!(" duty {on} {off}"));
    }
    for (a, b) in &s.windows {
        out.push_str(&format!(" window {a} {b}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
campaign v1
name stealth-drift
vehicle arducopter
mission straight 60 5
seed 9001
stealth-margin 0.9
search generations 4 lambda 5

# drift phase
phase drift gps 0 10 0 start 8 envelope 6 30 4
phase wobble gyro 0.05 0 0 start 12 duty 3 5
fault blackout gps-dropout window 20 22
param drift.bias.y 2 30
param drift.envelope.ramp 4 20
";

    #[test]
    fn parses_the_example() {
        let c = Campaign::from_text(EXAMPLE).expect("example parses");
        assert_eq!(c.name, "stealth-drift");
        assert_eq!(c.vehicle, RvId::ArduCopter);
        assert_eq!(c.seed, 9001);
        assert_eq!(c.stealth_margin, 0.9);
        assert_eq!(c.search.generations, 4);
        assert_eq!(c.phases.len(), 2);
        assert_eq!(c.faults.len(), 1);
        assert_eq!(c.dimensions(), 2);
        assert_eq!(c.initial_params(), vec![10.0, 6.0]);
        assert_eq!(c.bounds(), vec![(2.0, 30.0), (4.0, 20.0)]);
    }

    #[test]
    fn round_trips_the_example() {
        let c = Campaign::from_text(EXAMPLE).expect("example parses");
        let printed = c.to_text();
        let reparsed = Campaign::from_text(&printed).expect("canonical form parses");
        assert_eq!(c, reparsed);
    }

    #[test]
    fn missing_header_is_typed() {
        let err = Campaign::from_text("name x\n").expect_err("no header");
        assert_eq!(err, CampaignError::MissingHeader);
        assert_eq!(err.at("c.campaign"), "c.campaign: missing `campaign v1` header");
    }

    #[test]
    fn unsupported_version_carries_line() {
        let err = Campaign::from_text("campaign v9\n").expect_err("bad version");
        match err {
            CampaignError::UnsupportedVersion { line, ref found } => {
                assert_eq!(line, 1);
                assert_eq!(found, "v9");
            }
            ref other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        assert!(err.at("f").starts_with("f:1: "));
    }

    #[test]
    fn syntax_errors_carry_the_line() {
        let src = "campaign v1\nname x\nbogus line here\n";
        let err = Campaign::from_text(src).expect_err("bogus directive");
        assert_eq!(err.line(), Some(3));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let src = "campaign v1\nname a\nname b\n";
        let err = Campaign::from_text(src).expect_err("duplicate name");
        assert_eq!(
            err,
            CampaignError::DuplicateKey {
                line: 3,
                key: "name".into()
            }
        );
    }

    #[test]
    fn param_must_reference_existing_phase_field() {
        let src = "\
campaign v1
name x
vehicle arducopter
mission straight 40 5
seed 1
phase a gps 0 5 0 start 8
param a.duty.on 1 2
";
        let err = Campaign::from_text(src).expect_err("no duty clause on phase a");
        match err {
            CampaignError::UnknownParamTarget { line, target } => {
                assert_eq!(line, 7);
                assert_eq!(target, "a.duty.on");
            }
            other => panic!("expected UnknownParamTarget, got {other:?}"),
        }
    }

    #[test]
    fn inverted_bounds_rejected() {
        let src = "\
campaign v1
name x
vehicle arducopter
mission straight 40 5
seed 1
phase a gps 0 5 0 start 8
param a.bias.y 9 2
";
        let err = Campaign::from_text(src).expect_err("inverted bounds");
        assert!(matches!(err, CampaignError::InvalidBounds { line: 7, .. }));
    }

    #[test]
    fn schedule_needs_an_anchor() {
        let src = "\
campaign v1
name x
vehicle arducopter
mission straight 40 5
seed 1
phase a gps 0 5 0 duty 1 2
";
        let err = Campaign::from_text(src).expect_err("duty without start");
        assert_eq!(err.line(), Some(6));
    }

    #[test]
    fn defaults_fill_in() {
        let src = "\
campaign v1
name x
vehicle px4solo
mission hover 5 20
seed 7
phase a gyro 0.1 0 0 start 5
";
        let c = Campaign::from_text(src).expect("minimal campaign");
        assert_eq!(c.stealth_margin, DEFAULT_STEALTH_MARGIN);
        assert_eq!(c.search, SearchDecl::default());
        assert!(c.faults.is_empty());
        assert_eq!(c.dimensions(), 0);
    }

    #[test]
    fn every_vehicle_token_round_trips() {
        for (tok, rv) in VEHICLE_TOKENS {
            assert_eq!(vehicle_token(rv), tok);
            let src = format!(
                "campaign v1\nname v\nvehicle {tok}\nmission straight 30 5\nseed 1\nphase a gps 0 1 0 start 5\n"
            );
            let c = Campaign::from_text(&src).expect("vehicle parses");
            assert_eq!(c.vehicle, rv);
        }
    }
}
