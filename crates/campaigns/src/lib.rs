//! Adversarial attack-campaign engine.
//!
//! PID-Piper's evaluation (and this reproduction's, until now) tests
//! recovery against *hand-written* attack schedules — fixed biases on
//! fixed timers. A motivated attacker does better: they tune timing,
//! magnitude and shaping to maximize damage while staying under the
//! detector's threshold. This crate closes that gap with three layers:
//!
//! - [`dsl`] — a declarative, line-oriented **campaign DSL** (same idiom
//!   as `analyzer.boundaries` and the v3 deployment format) describing
//!   seeded multi-phase, multi-sensor attack programs: stacked GPS+gyro
//!   phases, duty-cycled intermittent spoofing, ramp-hold-release
//!   envelopes, plus the parameter space an attacker may search.
//! - [`compile`] — lowering onto the existing `FaultSchedule` /
//!   `Schedule` / `MissionAttack` machinery, so `MissionRunner` and the
//!   fleet engine consume campaigns unchanged, including phase-shifted
//!   fleet variants.
//! - [`search`](mod@search) — a **seeded adaptive attacker**: a (1+λ) evolutionary
//!   hill-climb over the campaign's parameter space that rejects any
//!   candidate whose peak monitor statistic crosses the stealth ceiling.
//!   Fully reproducible from `(campaign, seed)`, bit-identical at any
//!   worker count.
//!
//! The `pidpiper-campaign` binary exposes `check` (validate a campaign
//! file without running it) and `run` (train-or-load the deployed defense,
//! then hunt for its stealthy worst case).

#![deny(missing_docs)]

pub mod compile;
pub mod deploy;
pub mod dsl;
pub mod search;

pub use compile::CompiledCampaign;
pub use deploy::{deployed_pidpiper, training_traces, TrainScale};
pub use dsl::{
    Campaign, CampaignError, FaultDecl, FaultToken, MissionDecl, ParamDecl, ParamField,
    PhaseDecl, ScheduleDecl, SearchDecl, SensorTarget, DEFAULT_STEALTH_MARGIN,
};
pub use search::{
    params_fingerprint, search, search_with_jobs, CandidateEval, SearchOutcome,
};
