//! Lowering: a parsed [`Campaign`] plus a parameter vector becomes a
//! [`CompiledCampaign`] — concrete `MissionAttack`s, `Fault`s and a
//! `MissionSpec` that `MissionRunner` (and the fleet engine) consume
//! unchanged.

use crate::dsl::{
    write_field, Campaign, CampaignError, FaultToken, MissionDecl, PhaseDecl, ScheduleDecl,
    SensorTarget,
};
use pidpiper_attacks::{Attack, AttackKind, Envelope, EnvelopeAttack, Schedule};
use pidpiper_faults::{Fault, FaultKind, FaultSchedule, SensorChannel};
use pidpiper_missions::{MissionAttack, MissionPlan, MissionSpec, RunnerConfig, StrategyKind};
use pidpiper_sim::RvId;

/// A campaign lowered onto the existing attack/fault machinery at one
/// point of its parameter space.
#[derive(Debug, Clone)]
pub struct CompiledCampaign {
    /// The vehicle under attack.
    pub rv: RvId,
    /// The mission flown.
    pub plan: MissionPlan,
    /// Open-loop attacks, in phase declaration order (the deterministic
    /// stacking order).
    pub attacks: Vec<MissionAttack>,
    /// Benign faults riding along.
    pub faults: Vec<Fault>,
    /// Sensor/fault seed shared by every candidate of a search.
    pub seed: u64,
}

fn build_schedule(decl: &ScheduleDecl) -> Schedule {
    let base = match (decl.start, decl.duty) {
        (Some(start), Some((on, off))) => Some(Schedule::Intermittent { start, on, off }),
        (Some(start), None) => Some(Schedule::Continuous { start }),
        (None, _) => None,
    };
    let windows = if decl.windows.is_empty() {
        None
    } else {
        Some(Schedule::Windows(decl.windows.clone()))
    };
    match (base, windows) {
        (Some(b), Some(w)) => Schedule::Stacked(vec![b, w]),
        (Some(b), None) => b,
        (None, Some(w)) => w,
        (None, None) => Schedule::Never,
    }
}

fn build_fault_schedule(decl: &ScheduleDecl) -> FaultSchedule {
    let base = match (decl.start, decl.duty) {
        (Some(start), Some((on, off))) => Some(FaultSchedule::Intermittent { start, on, off }),
        (Some(start), None) => Some(FaultSchedule::Continuous { start }),
        (None, _) => None,
    };
    let windows = if decl.windows.is_empty() {
        None
    } else {
        Some(FaultSchedule::Windows(decl.windows.clone()))
    };
    match (base, windows) {
        (Some(b), Some(w)) => FaultSchedule::Stacked(vec![b, w]),
        (Some(b), None) => b,
        (None, Some(w)) => w,
        (None, None) => FaultSchedule::Never,
    }
}

fn attack_kind(phase: &PhaseDecl) -> AttackKind {
    match phase.sensor {
        SensorTarget::Gps => AttackKind::GpsBias(phase.bias),
        SensorTarget::Gyro => AttackKind::GyroBias(phase.bias),
        SensorTarget::Accel => AttackKind::AccelBias(phase.bias),
        SensorTarget::Baro => AttackKind::BaroBias(phase.bias.x),
        SensorTarget::Mag => AttackKind::MagBias(phase.bias.x),
    }
}

fn fault_kind(tok: FaultToken) -> FaultKind {
    match tok {
        FaultToken::GpsDropout => FaultKind::GpsDropout,
        FaultToken::NanBurst => FaultKind::NanBurst,
        FaultToken::FrozenGyro => FaultKind::FrozenSensor(SensorChannel::Gyro),
    }
}

fn build_plan(mission: MissionDecl) -> MissionPlan {
    match mission {
        MissionDecl::Straight { distance, altitude } => {
            MissionPlan::straight_line(distance, altitude)
        }
        MissionDecl::Polygon {
            sides,
            radius,
            altitude,
        } => MissionPlan::polygon(sides.max(3), radius, altitude),
        MissionDecl::Hover { altitude, duration } => MissionPlan::hover(altitude, duration),
    }
}

impl Campaign {
    /// Lowers the campaign at `params` (one value per declared `param`
    /// line, in file order). Pass [`Campaign::initial_params`] for the
    /// written-down operating point.
    pub fn compile(&self, params: &[f64]) -> Result<CompiledCampaign, CampaignError> {
        if params.len() != self.params.len() {
            return Err(CampaignError::WrongArity {
                expected: self.params.len(),
                got: params.len(),
            });
        }
        let mut phases = self.phases.clone();
        for (decl, &value) in self.params.iter().zip(params) {
            if let Some(phase) = phases.iter_mut().find(|p| p.id == decl.phase) {
                write_field(phase, decl.field, value.clamp(decl.lo, decl.hi));
            }
        }
        let attacks = phases
            .iter()
            .map(|p| {
                let kind = attack_kind(p);
                let schedule = build_schedule(&p.schedule);
                match p.envelope {
                    Some((ramp, hold, release)) => MissionAttack::Enveloped(EnvelopeAttack::new(
                        kind,
                        schedule,
                        Envelope::new(ramp, hold, release),
                    )),
                    None => MissionAttack::Scheduled(Attack::new(kind, schedule)),
                }
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| Fault::new(fault_kind(f.kind), build_fault_schedule(&f.schedule)))
            .collect();
        Ok(CompiledCampaign {
            rv: self.vehicle,
            plan: build_plan(self.mission),
            attacks,
            faults,
            seed: self.seed,
        })
    }

    /// Lowers the campaign at its declared operating point.
    pub fn compile_default(&self) -> Result<CompiledCampaign, CampaignError> {
        self.compile(&self.initial_params())
    }
}

impl CompiledCampaign {
    /// Builds the `MissionSpec` the runner consumes: the campaign's seed
    /// drives both sensor noise and fault RNG, so `(campaign, params)`
    /// fully determines the trace.
    pub fn spec(&self, strategy: StrategyKind) -> MissionSpec {
        let config = RunnerConfig::for_rv(self.rv)
            .with_seed(self.seed)
            .with_faults(self.faults.clone())
            .with_fault_seed(self.seed)
            .with_strategy(strategy);
        MissionSpec::clean(config, self.plan.clone()).with_attacks(self.attacks.clone())
    }

    /// A phase-shifted variant: every attack and fault schedule delayed by
    /// `offset` seconds (clamped at zero), for staggered fleet rollouts.
    pub fn shifted(&self, offset: f64) -> CompiledCampaign {
        let attacks = self
            .attacks
            .iter()
            .map(|a| match a {
                MissionAttack::Scheduled(atk) => MissionAttack::Scheduled(Attack::new(
                    atk.kind,
                    atk.schedule.shifted(offset),
                )),
                MissionAttack::Enveloped(env) => MissionAttack::Enveloped(EnvelopeAttack::new(
                    env.kind,
                    env.schedule.shifted(offset),
                    env.envelope,
                )),
                other => other.clone(),
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| Fault::new(f.kind.clone(), f.schedule.shifted(offset)))
            .collect();
        CompiledCampaign {
            rv: self.rv,
            plan: self.plan.clone(),
            attacks,
            faults,
            seed: self.seed,
        }
    }

    /// The union of the campaign's fault schedules as a single
    /// `FaultSchedule`, for handing to the fleet engine's `SessionSpec`.
    /// `None` when the campaign declares no faults.
    pub fn fleet_fault_schedule(&self) -> Option<FaultSchedule> {
        match self.faults.len() {
            0 => None,
            1 => self.faults.first().map(|f| f.schedule.clone()),
            _ => Some(FaultSchedule::Stacked(
                self.faults.iter().map(|f| f.schedule.clone()).collect(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_missions::{MissionRunner, NoDefense};

    const SRC: &str = "\
campaign v1
name lower-check
vehicle arducopter
mission straight 50 5
seed 77
phase drift gps 0 8 0 start 8 envelope 5 20 3
phase wobble gyro 0.04 0 0 start 10 duty 2 4 window 30 34
fault blackout gps-dropout window 20 22
param drift.bias.y 2 25
";

    #[test]
    fn lowering_builds_the_declared_program() {
        let c = Campaign::from_text(SRC).expect("parses");
        let compiled = c.compile_default().expect("compiles");
        assert_eq!(compiled.rv, RvId::ArduCopter);
        assert_eq!(compiled.attacks.len(), 2);
        assert_eq!(compiled.faults.len(), 1);
        match &compiled.attacks[0] {
            MissionAttack::Enveloped(e) => {
                assert!(matches!(e.kind, AttackKind::GpsBias(b) if b.y == 8.0));
                assert!(matches!(e.schedule, Schedule::Continuous { start } if start == 8.0));
            }
            other => panic!("expected enveloped phase, got {other:?}"),
        }
        match &compiled.attacks[1] {
            MissionAttack::Scheduled(a) => match &a.schedule {
                Schedule::Stacked(members) => {
                    assert_eq!(members.len(), 2);
                    assert!(matches!(
                        members[0],
                        Schedule::Intermittent { start, on, off }
                            if start == 10.0 && on == 2.0 && off == 4.0
                    ));
                    assert!(matches!(&members[1], Schedule::Windows(w) if w == &[(30.0, 34.0)]));
                }
                other => panic!("expected stacked schedule, got {other:?}"),
            },
            other => panic!("expected scheduled phase, got {other:?}"),
        }
    }

    #[test]
    fn params_overwrite_phase_fields_with_clamping() {
        let c = Campaign::from_text(SRC).expect("parses");
        let compiled = c.compile(&[99.0]).expect("compiles");
        match &compiled.attacks[0] {
            MissionAttack::Enveloped(e) => {
                // 99 clamps into the declared [2, 25] bound.
                assert!(matches!(e.kind, AttackKind::GpsBias(b) if b.y == 25.0));
            }
            other => panic!("expected enveloped phase, got {other:?}"),
        }
    }

    #[test]
    fn wrong_arity_is_a_typed_error() {
        let c = Campaign::from_text(SRC).expect("parses");
        let err = c.compile(&[1.0, 2.0]).expect_err("arity mismatch");
        assert_eq!(err, CampaignError::WrongArity { expected: 1, got: 2 });
    }

    #[test]
    fn shifted_delays_every_schedule() {
        let c = Campaign::from_text(SRC).expect("parses");
        let compiled = c.compile_default().expect("compiles");
        let shifted = compiled.shifted(5.0);
        match &shifted.attacks[0] {
            MissionAttack::Enveloped(e) => {
                assert!(matches!(e.schedule, Schedule::Continuous { start } if start == 13.0));
            }
            other => panic!("expected enveloped phase, got {other:?}"),
        }
        match &shifted.faults[0].schedule {
            FaultSchedule::Windows(w) => assert_eq!(w, &[(25.0, 27.0)]),
            other => panic!("expected windows, got {other:?}"),
        }
    }

    #[test]
    fn fleet_fault_schedule_unions_declared_faults() {
        let c = Campaign::from_text(SRC).expect("parses");
        let compiled = c.compile_default().expect("compiles");
        let sched = compiled.fleet_fault_schedule().expect("one fault declared");
        assert!(sched.is_active(21.0));
        assert!(!sched.is_active(10.0));
    }

    #[test]
    fn compiled_spec_runs_end_to_end() {
        let c = Campaign::from_text(SRC).expect("parses");
        let compiled = c.compile_default().expect("compiles");
        let spec = compiled.spec(StrategyKind::Algorithm1);
        let mut defense = NoDefense::new();
        let result = MissionRunner::new(spec.config.clone()).run(
            &spec.plan,
            &mut defense,
            spec.attacks.clone(),
        );
        assert!(result.final_deviation.is_finite());
        assert!(result.attack_steps > 0, "the campaign's phases must fire");
        assert!(result.fault_steps > 0, "the campaign's fault must fire");
    }
}
