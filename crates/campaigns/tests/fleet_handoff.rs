//! Campaigns hand off to the fleet engine unchanged: the compiled fault
//! schedules drop straight into `SessionSpec`, and the phase-shifted
//! variants stagger a fleet built from one campaign template.

use pidpiper_campaigns::Campaign;
use pidpiper_fleet::SessionSpec;
use pidpiper_missions::StrategyKind;

const SRC: &str = "\
campaign v1
name fleet-template
vehicle arducopter
mission straight 50 5
seed 33
phase drift gps 0 9 0 start 10 envelope 4 12 3
fault blackout gps-dropout window 18 21
fault burst nan-burst window 30 31
";

#[test]
fn session_spec_consumes_the_campaign_fault_schedule() {
    let campaign = Campaign::from_text(SRC).expect("parses");
    let compiled = campaign.compile_default().expect("compiles");
    let fault = compiled
        .fleet_fault_schedule()
        .expect("two faults declared");
    // The union schedule covers both declared faults and nothing else.
    assert!(fault.is_active(19.0));
    assert!(fault.is_active(30.5));
    assert!(!fault.is_active(25.0));

    let spec = SessionSpec::new(7, campaign.seed).with_fault(fault);
    assert!(spec.fault.is_some());
}

#[test]
fn from_mission_picks_up_compiled_faults() {
    let campaign = Campaign::from_text(SRC).expect("parses");
    let compiled = campaign.compile_default().expect("compiles");
    let mission = compiled.spec(StrategyKind::Algorithm1);
    let session = SessionSpec::from_mission(3, &mission);
    // The fleet derivation keeps the campaign's first fault (shifted by
    // the session id so monitors don't all trip on the same tick).
    let fault = session.fault.expect("campaign fault must survive handoff");
    assert!(!fault.is_active(18.1), "shifted schedule starts later");
    assert!(fault.is_active(19.0));
}

#[test]
fn shifted_variants_stagger_a_fleet() {
    let campaign = Campaign::from_text(SRC).expect("parses");
    let compiled = campaign.compile_default().expect("compiles");
    let offsets = [0.0, 2.5, 5.0];
    let variants: Vec<_> = offsets.iter().map(|&o| compiled.shifted(o)).collect();
    for (variant, offset) in variants.iter().zip(offsets) {
        let fault = variant.fleet_fault_schedule().expect("faults survive shift");
        assert!(fault.is_active(18.5 + offset));
        assert!(!fault.is_active(17.5 + offset));
        // The attack phases shift in lockstep with the faults.
        let spec = variant.spec(StrategyKind::Algorithm1);
        assert_eq!(spec.attacks.len(), 1);
    }
    // Distinct offsets produce distinct session specs from one template.
    let specs: Vec<SessionSpec> = variants
        .iter()
        .enumerate()
        .map(|(i, v)| {
            SessionSpec::new(i as u64, campaign.seed)
                .with_fault(v.fleet_fault_schedule().expect("fault"))
        })
        .collect();
    assert_ne!(specs[0].fault, specs[1].fault);
    assert_ne!(specs[1].fault, specs[2].fault);
}
