//! The stealth constraint, proven from both sides: candidates the search
//! rejects really do cross the CUSUM detection margin (or trip recovery),
//! and a search whose every candidate is rejected says so.

use pidpiper_campaigns::{search_with_jobs, Campaign};
use pidpiper_core::ffc::PipelineConfig;
use pidpiper_core::{AxisThresholds, FeatureSet, FfcModel, PidPiper, PidPiperConfig};
use pidpiper_missions::{Defense, MissionRunner, StrategyKind};
use pidpiper_ml::{LstmRegressor, RegressorConfig};

/// A tiny *untrained* deployment (the bench regression gate's trick): its
/// FFC predictions disagree with the PID almost immediately, so any real
/// attack drives the monitor over threshold fast — ideal for exercising
/// the rejection path.
fn trigger_happy_pidpiper() -> PidPiper {
    let set = FeatureSet::FfcPruned;
    let net = RegressorConfig {
        input_dim: set.dim(),
        output_dim: 4,
        hidden: 4,
        fc_width: 4,
        window: 3,
    };
    PidPiper::new(
        FfcModel::new(
            LstmRegressor::new(net, 7),
            set,
            PipelineConfig {
                decimate: 1,
                gate: Default::default(),
            },
        ),
        PidPiperConfig::new(AxisThresholds::quad(18.0, 18.0, 18.6), [0.5; 4], 5, 12),
    )
}

/// A blatant overt campaign: a hard 0.7 rad/s gyro bias from t = 5 s with
/// no envelope shaping. Against the trigger-happy monitor this must be
/// detected, never stealthy.
const OVERT: &str = "\
campaign v1
name overt-gyro
vehicle arducopter
mission straight 30 5
seed 21
stealth-margin 0.95
search generations 1 lambda 2
phase slam gyro 0.7 0 0 start 5
param slam.bias.x 0.5 0.9
";

#[test]
fn rejected_candidates_actually_cross_the_threshold() {
    let campaign = Campaign::from_text(OVERT).expect("campaign parses");
    let template = trigger_happy_pidpiper();

    // Side 1: run the campaign's own operating point directly and show the
    // monitor statistic crossing the margin (or recovery firing).
    let compiled = campaign.compile_default().expect("compiles");
    let spec = compiled.spec(StrategyKind::Algorithm1);
    let mut defense = template.clone();
    let result =
        MissionRunner::new(spec.config.clone()).run(&spec.plan, &mut defense, spec.attacks);
    let peak = result
        .trace
        .records()
        .iter()
        .fold(0.0_f64, |acc, r| acc.max(r.monitor_statistic));
    assert!(
        peak >= campaign.stealth_margin || result.recovery_activations > 0,
        "the overt attack must be detectable: peak statistic {peak}, \
         recoveries {}",
        result.recovery_activations
    );

    // Side 2: the search sees the same physics, so every candidate (the
    // parent and both children stay in [0.5, 0.9] rad/s — all blatant)
    // lands in the rejected bucket and the outcome admits defeat.
    let outcome = search_with_jobs(1, &campaign, StrategyKind::Algorithm1, |_| {
        Box::new(template.clone()) as Box<dyn Defense + Send>
    })
    .expect("search runs");
    assert_eq!(
        outcome.rejected_stealth, outcome.evaluations,
        "every blatant candidate must be rejected by the stealth gate"
    );
    assert!(!outcome.winner_stealthy);
    assert!(
        outcome.best.peak_statistic >= campaign.stealth_margin
            || outcome.best.recovery_activations > 0,
        "the recorded winner must carry the evidence of its detection"
    );
}

#[test]
fn stealth_margin_is_recorded_in_the_outcome() {
    let campaign = Campaign::from_text(OVERT).expect("campaign parses");
    let template = trigger_happy_pidpiper();
    let outcome = search_with_jobs(1, &campaign, StrategyKind::Algorithm1, |_| {
        Box::new(template.clone()) as Box<dyn Defense + Send>
    })
    .expect("search runs");
    assert_eq!(outcome.stealth_margin, campaign.stealth_margin);
    assert_eq!(outcome.evaluations, 3, "1 parent + 1 generation x 2 children");
}
