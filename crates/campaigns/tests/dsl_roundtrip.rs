//! Property tests for the campaign DSL: `parse(print(c)) == c` for every
//! structurally valid campaign, across missions, sensors, schedule shapes,
//! envelopes, faults and parameter declarations.

use pidpiper_campaigns::dsl::{
    FaultDecl, FaultToken, MissionDecl, ParamDecl, ParamField, PhaseDecl, ScheduleDecl,
    SearchDecl, SensorTarget,
};
use pidpiper_campaigns::Campaign;
use pidpiper_math::Vec3;
use pidpiper_sim::RvId;
use proptest::prelude::*;

const VEHICLES: [RvId; 6] = [
    RvId::ArduCopter,
    RvId::Px4Solo,
    RvId::ArduRover,
    RvId::PixhawkDrone,
    RvId::SkyViper,
    RvId::AionR1,
];

const SENSORS: [SensorTarget; 5] = [
    SensorTarget::Gps,
    SensorTarget::Gyro,
    SensorTarget::Accel,
    SensorTarget::Baro,
    SensorTarget::Mag,
];

const FAULTS: [FaultToken; 3] = [
    FaultToken::GpsDropout,
    FaultToken::NanBurst,
    FaultToken::FrozenGyro,
];

#[allow(clippy::too_many_arguments)]
fn build_campaign(
    vehicle_ix: usize,
    mission_ix: usize,
    dist: f64,
    alt: f64,
    sides: usize,
    seed: u64,
    margin: f64,
    generations: usize,
    lambda: usize,
    sensor_ix: usize,
    bias: (f64, f64, f64),
    start: f64,
    duty: Option<(f64, f64)>,
    window: Option<(f64, f64)>,
    envelope: Option<(f64, f64, f64)>,
    fault_ix: Option<usize>,
    param_span: Option<f64>,
) -> Campaign {
    let schedule = ScheduleDecl {
        start: Some(start),
        duty,
        windows: window.into_iter().collect(),
    };
    let phase = PhaseDecl {
        id: "p0".to_string(),
        sensor: SENSORS[sensor_ix % SENSORS.len()],
        bias: Vec3::new(bias.0, bias.1, bias.2),
        schedule,
        envelope,
    };
    let mut params = vec![ParamDecl {
        phase: "p0".to_string(),
        field: ParamField::BiasY,
        lo: -10.0,
        hi: 10.0,
    }];
    if let Some(span) = param_span {
        params.push(ParamDecl {
            phase: "p0".to_string(),
            field: ParamField::Start,
            lo: start,
            hi: start + span,
        });
    }
    Campaign {
        name: "prop-campaign".to_string(),
        vehicle: VEHICLES[vehicle_ix % VEHICLES.len()],
        mission: match mission_ix % 3 {
            0 => MissionDecl::Straight {
                distance: dist,
                altitude: alt,
            },
            1 => MissionDecl::Polygon {
                sides: 3 + sides % 6,
                radius: dist,
                altitude: alt,
            },
            _ => MissionDecl::Hover {
                altitude: alt,
                duration: dist,
            },
        },
        seed,
        stealth_margin: margin,
        search: SearchDecl {
            generations,
            lambda,
        },
        phases: vec![phase],
        faults: fault_ix
            .map(|ix| FaultDecl {
                id: "f0".to_string(),
                kind: FAULTS[ix % FAULTS.len()],
                schedule: ScheduleDecl {
                    start: None,
                    duty: None,
                    windows: vec![(12.0, 15.5)],
                },
            })
            .into_iter()
            .collect(),
        params,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_print_parse_is_identity(
        vehicle_ix in 0usize..6,
        mission_ix in 0usize..3,
        dist in 5.0..500.0f64,
        alt in 1.0..30.0f64,
        sides in 0usize..12,
        seed in 0u64..1_000_000,
        margin in 0.05..2.0f64,
        generations in 1usize..12,
        lambda in 1usize..12,
        sensor_ix in 0usize..5,
        bias in (-40.0..40.0f64, -40.0..40.0f64, -40.0..40.0f64),
        start in 0.0..60.0f64,
        duty_sel in 0usize..2,
        duty in (0.1..12.0f64, 0.1..12.0f64),
        window_sel in 0usize..2,
        window in (0.0..30.0f64, 30.0..60.0f64),
        env_sel in 0usize..2,
        env in (0.0..20.0f64, 0.0..40.0f64, 0.0..20.0f64),
        fault_sel in 0usize..4,
        param_span in 0.0..25.0f64,
    ) {
        let campaign = build_campaign(
            vehicle_ix,
            mission_ix,
            dist,
            alt,
            sides,
            seed,
            margin,
            generations,
            lambda,
            sensor_ix,
            bias,
            start,
            (duty_sel == 1).then_some(duty),
            (window_sel == 1).then_some(window),
            (env_sel == 1).then_some(env),
            (fault_sel < 3).then_some(fault_sel),
            Some(param_span),
        );
        let printed = campaign.to_text();
        let reparsed = Campaign::from_text(&printed);
        prop_assert!(reparsed.is_ok(), "canonical text must reparse: {reparsed:?}\n{printed}");
        prop_assert_eq!(reparsed.unwrap(), campaign);
    }

    #[test]
    fn printing_is_deterministic(
        seed in 0u64..1_000_000,
        bias_y in -30.0..30.0f64,
        start in 0.0..40.0f64,
    ) {
        let campaign = build_campaign(
            0, 0, 60.0, 5.0, 0, seed, 0.95, 4, 4, 0,
            (0.0, bias_y, 0.0), start, None, None, None, None, None,
        );
        prop_assert_eq!(campaign.to_text(), campaign.clone().to_text());
        let reparsed = Campaign::from_text(&campaign.to_text()).unwrap();
        // Second round trip: the canonical form is a fixed point.
        prop_assert_eq!(reparsed.to_text(), campaign.to_text());
    }
}
