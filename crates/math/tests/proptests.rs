//! Property-based tests for the mathematical substrate.

use pidpiper_math::cusum::WindowedMonitor;
use pidpiper_math::{
    dtw_distance, dtw_path, wrap_angle, Cusum, Mat3, Matrix, RollingWindow, Vec3,
};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let span = range.end - range.start;
        range.start + (x.abs() % span.max(1e-9))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Vec3 / Mat3 geometry ---------------------------------------

    #[test]
    fn vec3_norm_triangle_inequality(
        ax in -1e3..1e3f64, ay in -1e3..1e3f64, az in -1e3..1e3f64,
        bx in -1e3..1e3f64, by in -1e3..1e3f64, bz in -1e3..1e3f64,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn vec3_clamp_norm_never_exceeds(
        x in -1e3..1e3f64, y in -1e3..1e3f64, z in -1e3..1e3f64,
        limit in 0.0..100.0f64,
    ) {
        let v = Vec3::new(x, y, z).clamp_norm(limit);
        prop_assert!(v.norm() <= limit + 1e-9);
    }

    #[test]
    fn rotation_preserves_norm(
        roll in -1.5..1.5f64, pitch in -1.5..1.5f64, yaw in -3.1..3.1f64,
        x in -10.0..10.0f64, y in -10.0..10.0f64, z in -10.0..10.0f64,
    ) {
        let r = Mat3::from_euler(roll, pitch, yaw);
        let v = Vec3::new(x, y, z);
        prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn euler_round_trip_away_from_gimbal_lock(
        roll in -1.4..1.4f64, pitch in -1.4..1.4f64, yaw in -3.0..3.0f64,
    ) {
        let r = Mat3::from_euler(roll, pitch, yaw);
        let (r2, p2, y2) = r.to_euler();
        prop_assert!((roll - r2).abs() < 1e-8);
        prop_assert!((pitch - p2).abs() < 1e-8);
        prop_assert!((yaw - y2).abs() < 1e-8);
    }

    #[test]
    fn wrap_angle_idempotent(a in -100.0..100.0f64) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
    }

    // --- DTW ---------------------------------------------------------

    #[test]
    fn dtw_self_distance_zero(xs in prop::collection::vec(-10.0..10.0f64, 1..40)) {
        prop_assert_eq!(dtw_distance(&xs, &xs), 0.0);
    }

    #[test]
    fn dtw_symmetric(
        xs in prop::collection::vec(-10.0..10.0f64, 1..30),
        ys in prop::collection::vec(-10.0..10.0f64, 1..30),
    ) {
        prop_assert!((dtw_distance(&xs, &ys) - dtw_distance(&ys, &xs)).abs() < 1e-9);
    }

    #[test]
    fn dtw_distance_nonnegative_and_matches_path(
        xs in prop::collection::vec(-10.0..10.0f64, 2..25),
        ys in prop::collection::vec(-10.0..10.0f64, 2..25),
    ) {
        let d = dtw_distance(&xs, &ys);
        let (dp, path) = dtw_path(&xs, &ys);
        prop_assert!(d >= 0.0);
        prop_assert!((d - dp).abs() < 1e-9);
        // Path endpoints are the series corners and indices are monotone.
        prop_assert_eq!(*path.first().unwrap(), (0, 0));
        prop_assert_eq!(*path.last().unwrap(), (xs.len() - 1, ys.len() - 1));
        for w in path.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
            prop_assert!(w[1].0 - w[0].0 <= 1 && w[1].1 - w[0].1 <= 1);
        }
    }

    // --- CUSUM / windows ----------------------------------------------

    #[test]
    fn cusum_statistic_never_negative(
        drift in 0.01..5.0f64,
        residuals in prop::collection::vec(-10.0..10.0f64, 0..200),
    ) {
        let mut c = Cusum::new(drift);
        for r in residuals {
            prop_assert!(c.update(r) >= 0.0);
        }
    }

    #[test]
    fn cusum_monotone_in_residuals(
        drift in 0.1..2.0f64,
        base in prop::collection::vec(0.0..5.0f64, 1..100),
    ) {
        // Scaling every residual up cannot decrease the final statistic.
        let mut small = Cusum::new(drift);
        let mut large = Cusum::new(drift);
        let mut s_final = 0.0;
        let mut l_final = 0.0;
        for r in &base {
            s_final = small.update(*r);
            l_final = large.update(r * 2.0);
        }
        prop_assert!(l_final >= s_final - 1e-12);
    }

    #[test]
    fn windowed_monitor_bounded_by_window_max(
        window in 1usize..50,
        residuals in prop::collection::vec(0.0..10.0f64, 1..200),
    ) {
        let mut m = WindowedMonitor::new(window);
        for r in &residuals {
            let s = m.update(*r);
            prop_assert!(s <= window as f64 * 10.0 + 1e-9);
        }
    }

    #[test]
    fn rolling_window_mean_within_sample_range(
        cap in 1usize..30,
        xs in prop::collection::vec(-100.0..100.0f64, 1..100),
    ) {
        let mut w = RollingWindow::new(cap);
        for x in &xs {
            w.push(*x);
            let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(w.mean() >= lo - 1e-9 && w.mean() <= hi + 1e-9);
            prop_assert!(w.variance() >= 0.0);
        }
    }

    // --- least squares -------------------------------------------------

    #[test]
    fn least_squares_solves_consistent_systems(
        x0 in -5.0..5.0f64, x1 in -5.0..5.0f64,
        seed in 0u64..1000,
    ) {
        // Build a well-conditioned random system with a known solution.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0) + 2.0])
            .collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = rows.iter().map(|r| r[0] * x0 + r[1] * x1).collect();
        if let Ok(sol) = a.solve_least_squares(&b) {
            prop_assert!((sol[0] - x0).abs() < 1e-6, "x0 {} vs {}", sol[0], x0);
            prop_assert!((sol[1] - x1).abs() < 1e-6, "x1 {} vs {}", sol[1], x1);
        }
    }

    #[test]
    fn unused_strategy_compiles(_v in finite_f64(0.0..1.0)) {
        // Keeps the helper exercised; the strategy itself is the property.
    }
}
