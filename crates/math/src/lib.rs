//! Small self-contained mathematical substrate for the PID-Piper reproduction.
//!
//! The paper's pipeline needs a handful of numerical tools that we implement
//! from scratch rather than pulling in heavyweight dependencies:
//!
//! - 3-vector / 3x3-matrix geometry for rigid-body simulation ([`vec3`], [`mat3`]);
//! - small dense matrices with QR-based least squares for system
//!   identification (SRR baseline) and VIF regressions ([`matrix`]);
//! - descriptive statistics and rolling windows ([`stats`]);
//! - the Variance Inflation Factor collinearity metric from Section III of
//!   the paper ([`mod@vif`]);
//! - dynamic time warping used for threshold calibration ([`dtw`]);
//! - the CUSUM change detector used by the monitoring module ([`cusum`]);
//! - angle helpers (wrapping, degree/radian conversion) ([`angles`]);
//! - op-order-preserving cache-blocked matrix–matrix micro-kernels for
//!   batched fleet inference ([`gemm`]);
//! - branch-free, auto-vectorizable sigmoid/tanh/exp kernels shared by
//!   every inference path ([`activations`]);
//! - NaN-safe total-order comparison helpers ([`float`]) — the required
//!   replacement for `partial_cmp().unwrap()` and float `==` throughout
//!   the workspace (enforced by `pidpiper-analyzer`).
//!
//! # Examples
//!
//! ```
//! use pidpiper_math::cusum::Cusum;
//!
//! let mut monitor = Cusum::new(0.5);
//! // Transient residuals below the drift never accumulate:
//! assert_eq!(monitor.update(0.2), 0.0);
//! // Systematic residuals do:
//! for _ in 0..10 { monitor.update(1.5); }
//! assert!(monitor.statistic() > 5.0);
//! ```

#![deny(missing_docs)]

pub mod activations;
pub mod angles;
pub mod cusum;
pub mod dtw;
pub mod float;
pub mod gemm;
pub mod mat3;
pub mod matrix;
pub mod stats;
pub mod vec3;
pub mod vif;

pub use angles::{deg_to_rad, rad_to_deg, wrap_angle};
pub use cusum::Cusum;
pub use dtw::{dtw_distance, dtw_path};
pub use float::{approx_eq, fmax, fmin, is_zero, sort_floats};
pub use gemm::{gemm_acc, gemm_acc_f32, gemm_bias, gemm_bias_f32};
pub use mat3::Mat3;
pub use matrix::Matrix;
pub use stats::{mean, population_variance, sample_variance, std_dev, RollingWindow};
pub use vec3::Vec3;
pub use vif::{vif, vif_all};
