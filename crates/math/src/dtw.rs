//! Dynamic time warping (DTW), used by PID-Piper's threshold calibration.
//!
//! The ML model's predictions may lag the PID controller by a small,
//! variable latency. The paper aligns the two time series with DTW and
//! accumulates the absolute error along the optimal warping path; the
//! largest accumulated error across the validation missions becomes the
//! detection threshold `tau`.

use crate::float::fmin;

/// Computes the DTW distance between two series using absolute difference
/// as the local cost.
///
/// Returns `f64::INFINITY` if either series is empty.
///
/// # Examples
///
/// ```
/// use pidpiper_math::dtw_distance;
/// // Identical series have zero distance.
/// assert_eq!(dtw_distance(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
/// // Time-shifted series align cheaply.
/// let a = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 1.0, 2.0, 1.0, 0.0, 0.0];
/// assert!(dtw_distance(&a, &b) < 0.5);
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let n = a.len();
    let m = b.len();
    // Rolling two-row DP to keep memory at O(m).
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = fmin(fmin(prev[j], curr[j - 1]), prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Computes the DTW distance and the optimal warping path as index pairs
/// `(i, j)` from `(0, 0)` to `(n-1, m-1)`.
///
/// Uses the full O(n*m) cost matrix; prefer [`dtw_distance`] when only the
/// distance is needed.
///
/// An empty series has no alignment: the distance is `f64::INFINITY` and
/// the path is empty, mirroring [`dtw_distance`].
pub fn dtw_path(a: &[f64], b: &[f64]) -> (f64, Vec<(usize, usize)>) {
    if a.is_empty() || b.is_empty() {
        return (f64::INFINITY, Vec::new());
    }
    let n = a.len();
    let m = b.len();
    let mut dp = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    dp[idx(0, 0)] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = fmin(
                fmin(dp[idx(i - 1, j)], dp[idx(i, j - 1)]),
                dp[idx(i - 1, j - 1)],
            );
            dp[idx(i, j)] = cost + best;
        }
    }
    // Backtrack.
    let mut path = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = dp[idx(i - 1, j - 1)];
        let up = dp[idx(i - 1, j)];
        let left = dp[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    // Degenerate leading moves when one index hits zero first.
    while i > 0 {
        i -= 1;
        path.push((i, 0));
    }
    while j > 0 {
        j -= 1;
        path.push((0, j));
    }
    path.reverse();
    (dp[idx(n, m)], path)
}

/// Accumulates `|a[i] - b[j]|` along the optimal DTW path — the quantity the
/// paper records per mission when deriving the detection threshold.
///
/// Equivalent to the DTW distance itself but named for its calibration role.
/// Returns `f64::INFINITY` if either series is empty.
pub fn accumulated_warped_error(a: &[f64], b: &[f64]) -> f64 {
    let (dist, _) = dtw_path(a, b);
    dist
}

/// Maximum temporal deviation (in samples) along the optimal DTW path —
/// how far the ML predictions lag or lead the PID estimates.
/// Returns `0` if either series is empty (there is no path to deviate on).
pub fn max_temporal_deviation(a: &[f64], b: &[f64]) -> usize {
    let (_, path) = dtw_path(a, b);
    path.iter()
        .map(|&(i, j)| i.abs_diff(j))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_distance() {
        let a = [1.0, 4.0, -2.0, 0.5];
        assert_eq!(dtw_distance(&a, &a), 0.0);
        let (d, path) = dtw_path(&a, &a);
        assert_eq!(d, 0.0);
        // Diagonal path.
        assert_eq!(path, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [0.0, 1.0, 3.0, 2.0, 0.0];
        let b = [0.0, 2.0, 3.0, 1.0];
        assert_eq!(dtw_distance(&a, &b), dtw_distance(&b, &a));
    }

    #[test]
    fn shifted_series_cheaper_than_pointwise() {
        let a: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        // b is a delayed by 3 samples.
        let b: Vec<f64> = (0..50).map(|i| (((i as f64) - 3.0) * 0.3).sin()).collect();
        let pointwise: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        let warped = dtw_distance(&a, &b);
        assert!(warped < pointwise * 0.5, "warped {warped} vs pointwise {pointwise}");
    }

    #[test]
    fn empty_series_is_infinite() {
        assert!(dtw_distance(&[], &[1.0]).is_infinite());
        assert!(dtw_distance(&[1.0], &[]).is_infinite());
    }

    #[test]
    fn empty_series_path_is_empty() {
        let (d, path) = dtw_path(&[], &[1.0, 2.0]);
        assert!(d.is_infinite());
        assert!(path.is_empty());
        assert!(accumulated_warped_error(&[], &[]).is_infinite());
        assert_eq!(max_temporal_deviation(&[1.0], &[]), 0);
    }

    #[test]
    fn path_endpoints_are_corners() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 1.0, 1.5, 2.0];
        let (_, path) = dtw_path(&a, &b);
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (2, 3));
    }

    #[test]
    fn temporal_deviation_detects_lag() {
        let a: Vec<f64> = (0..40).map(|i| if (10..20).contains(&i) { 1.0 } else { 0.0 }).collect();
        // Same pulse delayed by 4 samples.
        let b: Vec<f64> = (0..40).map(|i| if (14..24).contains(&i) { 1.0 } else { 0.0 }).collect();
        let dev = max_temporal_deviation(&a, &b);
        assert!((3..=8).contains(&dev), "deviation {dev} should be near 4");
    }

    #[test]
    fn accumulated_error_matches_distance() {
        let a = [0.0, 2.0, 1.0];
        let b = [0.5, 1.5, 1.0, 1.0];
        assert_eq!(accumulated_warped_error(&a, &b), dtw_path(&a, &b).0);
    }

    #[test]
    fn triangle_like_monotonicity() {
        // Adding a constant offset increases distance roughly linearly.
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).cos()).collect();
        let b1: Vec<f64> = a.iter().map(|x| x + 0.1).collect();
        let b2: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        assert!(dtw_distance(&a, &b1) < dtw_distance(&a, &b2));
    }
}
