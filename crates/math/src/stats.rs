//! Descriptive statistics and rolling windows.

use std::collections::VecDeque;

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// use pidpiper_math::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns `0.0` for slices shorter
/// than 1.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`). Returns `0.0` for slices shorter
/// than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Mean absolute error between two equally long series.
///
/// This is the accuracy metric used throughout the paper's evaluation
/// (`MAE = 1/n * sum |y_pid - y_ml|`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use pidpiper_math::stats::mean_absolute_error;
/// let mae = mean_absolute_error(&[1.0, 2.0], &[2.0, 0.0]);
/// assert_eq!(mae, 1.5);
/// ```
pub fn mean_absolute_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "MAE requires equal-length series");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Root-mean-square error between two equally long series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn root_mean_square_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "RMSE requires equal-length series");
    if a.is_empty() {
        return 0.0;
    }
    (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Empirical p-quantile (linear interpolation between order statistics).
///
/// NaN samples sort above `+inf` under the total order, so a corrupted
/// input surfaces in the upper quantiles instead of panicking.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut sorted = xs.to_vec();
    crate::float::sort_floats(&mut sorted);
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-capacity rolling window with O(1) mean/variance queries.
///
/// Maintains running sums, so repeated [`RollingWindow::push`] calls are
/// cheap. Used by the noise-gate (the paper's sigmoid-layer noise model) to
/// compare the present input `x(t)` against its recent history `X(k)`.
///
/// # Examples
///
/// ```
/// use pidpiper_math::RollingWindow;
///
/// let mut w = RollingWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// assert_eq!(w.mean(), 2.0);
/// w.push(5.0); // evicts 1.0
/// assert!((w.mean() - 10.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct RollingWindow {
    capacity: usize,
    buf: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
}

impl RollingWindow {
    /// Creates an empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        RollingWindow {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a sample, evicting the oldest one if the window is full.
    /// Returns the evicted sample, if any.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front().inspect(|old| {
                self.sum -= old;
                self.sum_sq -= old * old;
            })
        } else {
            None
        };
        self.buf.push_back(x);
        self.sum += x;
        self.sum_sq += x * x;
        evicted
    }

    /// Number of samples currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Mean of the stored samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Population variance of the stored samples (0 when empty).
    ///
    /// Clamped at zero to guard against catastrophic cancellation in the
    /// running sums.
    pub fn variance(&self) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        let n = self.buf.len() as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    /// Population standard deviation of the stored samples.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Iterates over the stored samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.buf.iter()
    }

    /// The most recently pushed sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(population_variance(&xs), 4.0);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn mae_rmse() {
        let a = [0.0, 0.0, 0.0];
        let b = [3.0, -3.0, 3.0];
        assert_eq!(mean_absolute_error(&a, &b), 3.0);
        assert_eq!(root_mean_square_error(&a, &b), 3.0);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mae_length_mismatch_panics() {
        mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn rolling_window_evicts() {
        let mut w = RollingWindow::new(2);
        assert!(w.is_empty());
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(3.0), Some(1.0));
        assert_eq!(w.mean(), 2.5);
        assert_eq!(w.last(), Some(3.0));
    }

    #[test]
    fn rolling_window_variance_matches_batch() {
        let mut w = RollingWindow::new(4);
        for x in [1.0, 5.0, 2.0, 8.0, 3.0, 3.0] {
            w.push(x);
        }
        // Window now holds [2, 8, 3, 3].
        let batch = population_variance(&[2.0, 8.0, 3.0, 3.0]);
        assert!((w.variance() - batch).abs() < 1e-12);
    }

    #[test]
    fn rolling_window_clear() {
        let mut w = RollingWindow::new(3);
        w.push(10.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RollingWindow::new(0);
    }
}
