//! Cumulative-sum (CUSUM) change detection, the monitoring statistic used
//! by PID-Piper and Savior.
//!
//! The recursion from the paper's Algorithm 1:
//! `S(t+1) = max(0, S(t) + |residual(t)| - b(t))`, with `S(0) = 0` and drift
//! `b(t) > 0` chosen so that transient residuals do not accumulate. When
//! `S` exceeds the calibrated threshold `tau` the monitor flags an attack.

/// One-sided CUSUM accumulator over non-negative residuals.
///
/// # Examples
///
/// ```
/// use pidpiper_math::Cusum;
///
/// let mut c = Cusum::new(1.0);
/// c.update(0.5);          // below drift: no accumulation
/// assert_eq!(c.statistic(), 0.0);
/// c.update(3.0);
/// c.update(3.0);
/// assert_eq!(c.statistic(), 4.0);
/// c.reset();
/// assert_eq!(c.statistic(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cusum {
    drift: f64,
    statistic: f64,
}

impl Cusum {
    /// Creates a CUSUM with the given drift `b > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `drift` is not strictly positive (the paper requires
    /// `b(t) > 0`, otherwise benign noise accumulates without bound).
    pub fn new(drift: f64) -> Self {
        assert!(drift > 0.0, "CUSUM drift must be strictly positive");
        Cusum {
            drift,
            statistic: 0.0,
        }
    }

    /// Feeds one residual magnitude and returns the updated statistic.
    ///
    /// Negative residuals are taken by absolute value, matching the paper's
    /// `|y_ML - y_PID|` usage.
    pub fn update(&mut self, residual: f64) -> f64 {
        self.statistic = (self.statistic + residual.abs() - self.drift).max(0.0);
        self.statistic
    }

    /// The current accumulated statistic `S(t)`.
    #[inline]
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// The configured drift `b`.
    #[inline]
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Clamps the statistic to `cap` (a non-finite statistic is also
    /// replaced by `cap`). Supervised deployments saturate `S(t)` so that
    /// a long fault cannot wind the accumulator up arbitrarily — bounding
    /// both the de-accumulation a reset must wait for and the damage a
    /// single non-finite residual can do.
    pub fn saturate(&mut self, cap: f64) {
        if self.statistic > cap || self.statistic.is_nan() {
            self.statistic = cap;
        }
    }

    /// Resets `S` to zero (Algorithm 1 resets on detection).
    pub fn reset(&mut self) {
        self.statistic = 0.0;
    }
}

/// A windowed residual monitor, as used by the CI and SRR baselines.
///
/// Accumulates `|residual|` over a fixed-length window and raises when the
/// windowed sum exceeds the threshold. Unlike CUSUM, the statistic forgets
/// everything outside the window — which is exactly the weakness stealthy
/// attacks exploit (the attacker hides a sub-threshold bias inside every
/// window).
#[derive(Debug, Clone)]
pub struct WindowedMonitor {
    window: crate::stats::RollingWindow,
}

impl WindowedMonitor {
    /// Creates a monitor over `window_len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is zero.
    pub fn new(window_len: usize) -> Self {
        WindowedMonitor {
            window: crate::stats::RollingWindow::new(window_len),
        }
    }

    /// Feeds one residual and returns the current windowed sum.
    pub fn update(&mut self, residual: f64) -> f64 {
        self.window.push(residual.abs());
        self.statistic()
    }

    /// Sum of absolute residuals currently inside the window.
    pub fn statistic(&self) -> f64 {
        self.window.iter().sum()
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transients_do_not_accumulate() {
        let mut c = Cusum::new(0.5);
        for _ in 0..100 {
            c.update(0.3);
        }
        assert_eq!(c.statistic(), 0.0);
    }

    #[test]
    fn systematic_bias_accumulates_linearly() {
        let mut c = Cusum::new(0.5);
        for _ in 0..10 {
            c.update(1.5);
        }
        assert!((c.statistic() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn statistic_never_negative() {
        let mut c = Cusum::new(2.0);
        c.update(10.0);
        for _ in 0..100 {
            c.update(0.0);
        }
        assert_eq!(c.statistic(), 0.0);
    }

    #[test]
    fn absolute_value_of_residual_used() {
        let mut a = Cusum::new(0.1);
        let mut b = Cusum::new(0.1);
        a.update(2.0);
        b.update(-2.0);
        assert_eq!(a.statistic(), b.statistic());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_drift_rejected() {
        let _ = Cusum::new(0.0);
    }

    #[test]
    fn reset_clears() {
        let mut c = Cusum::new(0.5);
        c.update(100.0);
        c.reset();
        assert_eq!(c.statistic(), 0.0);
    }

    #[test]
    fn saturate_caps_and_heals_non_finite() {
        let mut c = Cusum::new(0.5);
        c.update(100.0);
        c.saturate(10.0);
        assert_eq!(c.statistic(), 10.0);
        // Below the cap: untouched.
        c.reset();
        c.update(3.0);
        c.saturate(10.0);
        assert!((c.statistic() - 2.5).abs() < 1e-12);
        // A NaN residual flushes the accumulator to zero (`max(0.0)`
        // ignores NaN); saturate keeps the statistic finite either way.
        c.update(f64::NAN);
        c.saturate(10.0);
        assert!(c.statistic().is_finite());
        // An infinite residual *does* poison the statistic; saturate
        // restores it to the cap.
        c.update(f64::INFINITY);
        c.saturate(10.0);
        assert_eq!(c.statistic(), 10.0);
    }

    #[test]
    fn windowed_monitor_forgets() {
        let mut w = WindowedMonitor::new(3);
        w.update(5.0);
        w.update(0.0);
        w.update(0.0);
        assert_eq!(w.statistic(), 5.0);
        w.update(0.0); // evicts the 5.0
        assert_eq!(w.statistic(), 0.0);
    }

    #[test]
    fn stealthy_attack_evades_window_but_not_cusum() {
        // An attacker injecting a constant 0.9 against a window of length 10
        // and threshold 10 stays below threshold forever...
        let mut w = WindowedMonitor::new(10);
        let mut max_w: f64 = 0.0;
        // ...but a CUSUM with drift 0.5 accumulates without bound.
        let mut c = Cusum::new(0.5);
        for _ in 0..200 {
            max_w = max_w.max(w.update(0.9));
            c.update(0.9);
        }
        assert!(max_w < 10.0, "window statistic stays sub-threshold");
        assert!(c.statistic() > 50.0, "CUSUM catches the persistent bias");
    }
}
