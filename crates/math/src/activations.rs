//! Branch-free transcendental kernels for the inference hot path.
//!
//! The FFC's LSTM evaluates hundreds of sigmoids and tanhs per vehicle
//! tick. `f64::exp`/`f64::tanh` go through libm: an opaque scalar call
//! with internal branching that the compiler can neither inline nor
//! auto-vectorize, so a batched gate loop over 64 sessions pays 240
//! serial library calls per tick no matter how wide the registers are.
//! This module provides drop-in replacements built from straight-line
//! IEEE arithmetic (multiply, add, divide, compare-select, and exponent
//! bit assembly) with **no data-dependent branches**, so LLVM vectorizes
//! the surrounding panel loops and the batched path evaluates eight
//! lanes per instruction.
//!
//! # One definition, every path
//!
//! The fleet's determinism and batching gates require the streaming
//! scalar path, the batched panel path, and the training-time forward
//! pass to produce `to_bits`-identical results. That holds here for the
//! same reason the GEMM kernels are exact (see [`crate::gemm`]): these
//! functions perform a fixed per-element sequence of individually
//! rounded IEEE operations, and vectorizing that sequence changes which
//! *register* each element sits in, never the arithmetic. The one rule
//! is that every inference path must call **these** functions — mixing
//! `fast_sigmoid` on one path with a libm sigmoid on another would
//! diverge in the low bits. `pidpiper-ml` therefore routes all of its
//! activation call sites (scalar, batched, and BPTT) through this
//! module.
//!
//! # Accuracy and edge cases
//!
//! `exp` uses the standard reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`:
//! `k` is recovered branch-free with the round-to-nearest shifter
//! constant `1.5·2^52`, `r` via a two-term Cody–Waite subtraction, the
//! core `e^r` via an order-11 Horner polynomial (truncation error
//! ~6e-15 relative), and the `2^k` scale is assembled directly in the
//! exponent bits. Relative error is ≲1e-14 across the clamped domain —
//! indistinguishable from libm for the model (whose tolerances are many
//! orders looser) but not bit-equal to it, which is why the swap had to
//! reach every path at once.
//!
//! - Inputs are clamped to the non-overflowing domain (`±708` for f64,
//!   `−87/88` for f32); beyond it the functions saturate instead of
//!   returning `inf`/`0` — the saturated activation values are exactly
//!   the limits (`1.0`, `±1.0`) well before the clamp engages.
//! - `NaN` propagates: `clamp` keeps NaN, every polynomial step keeps
//!   NaN, and the final scale multiply keeps NaN. The NaN-burst
//!   bit-identity suite in `pidpiper-ml` leans on this.
//! - `fast_sigmoid` is strictly inside `[0, 1]` and `fast_tanh` inside
//!   `[-1, 1]` (the closed endpoints are reached by rounding at
//!   saturation, as with libm).

// The polynomial and Cody–Waite constants below carry their full
// published precision; truncating to the shortest round-tripping
// literal would parse to the same float but lose the provenance of the
// coefficients against fdlibm and the minimax tables.
#![allow(clippy::excessive_precision)]

/// Round-to-nearest shifter: `1.5 * 2^52`. Adding it to a f64 whose
/// magnitude is below `2^51` forces rounding to an integer; the low
/// mantissa bits of the sum then hold that integer in two's complement.
const SHIFT_F64: f64 = 6_755_399_441_055_744.0;

/// High half of `ln 2` (fdlibm split): exact in the upper bits so that
/// `k * LN2_HI` rounds without error for the `k` range we produce.
const LN2_HI_F64: f64 = 6.931_471_803_691_238_164_9e-1;
/// Low half of `ln 2`; mops up the tail of the Cody–Waite reduction.
const LN2_LO_F64: f64 = 1.908_214_929_270_587_700_02e-10;

/// `exp(x)` as straight-line IEEE arithmetic (relative error ≲ 1e-14).
///
/// Saturates at the edges of `[-708, 708]` instead of under/overflowing
/// and propagates NaN. See the module docs for the derivation and for
/// why every inference path must share this definition.
#[inline(always)]
pub fn fast_exp(x: f64) -> f64 {
    // clamp keeps NaN (self-propagating) and bounds k so the exponent
    // assembly below cannot wrap.
    let x = x.clamp(-708.0, 708.0);
    let shifted = x * std::f64::consts::LOG2_E + SHIFT_F64;
    let k = shifted - SHIFT_F64;
    let r = (x - k * LN2_HI_F64) - k * LN2_LO_F64;
    // e^r on |r| <= ln2/2 ~ 0.3466: order-11 Taylor, Horner form. Each
    // coefficient is 1/n! rounded to nearest.
    let mut p = 2.505_210_838_544_171_9e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589_1e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589_4e-6; // 1/9!
    p = p * r + 2.480_158_730_158_730_2e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984_1e-4; // 1/7!
    p = p * r + 1.388_888_888_888_889_0e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333_0e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^k from the integer hiding in `shifted`'s low mantissa bits:
    // (bits << 52) leaves k in the exponent field (two's complement
    // wrap-around included), and adding the bias 1023<<52 finishes the
    // IEEE encoding. For NaN input the bits are garbage but the final
    // multiply against a NaN polynomial restores NaN.
    let scale = f64::from_bits((shifted.to_bits() << 52).wrapping_add(0x3FF0_0000_0000_0000));
    p * scale
}

/// `1 / (1 + e^(-z))` via [`fast_exp`] — the logistic gate activation.
#[inline(always)]
pub fn fast_sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + fast_exp(-z))
}

/// `tanh(z) = (e^(2z) - 1) / (e^(2z) + 1)` via [`fast_exp`].
///
/// Absolute error ≲ 1e-14; relative error degrades toward `|z| → 0`
/// (the `e^(2z) - 1` subtraction cancels), which is harmless at the
/// model's tolerances. Saturates to exactly `±1.0` for `|z| ≳ 19`.
#[inline(always)]
pub fn fast_tanh(z: f64) -> f64 {
    let t = fast_exp(2.0 * z.clamp(-20.0, 20.0));
    (t - 1.0) / (t + 1.0)
}

/// f32 round-to-nearest shifter: `1.5 * 2^23`.
const SHIFT_F32: f32 = 12_582_912.0;
/// High half of `ln 2` in f32 (Cephes split, exactly representable).
const LN2_HI_F32: f32 = 0.693_359_375;
/// Low (negative) half of `ln 2` in f32.
const LN2_LO_F32: f32 = -2.121_944_4e-4;

/// f32 `exp(x)`: the [`fast_exp`] construction at single precision
/// (order-6 polynomial, relative error ≲ 2e-7). Used by the opt-in
/// `f32` batched mode only — f64 paths never call it.
#[inline(always)]
pub fn fast_exp_f32(x: f32) -> f32 {
    let x = x.clamp(-87.0, 88.0);
    let shifted = x * std::f32::consts::LOG2_E + SHIFT_F32;
    let k = shifted - SHIFT_F32;
    let r = (x - k * LN2_HI_F32) - k * LN2_LO_F32;
    // Order-7 Taylor, Horner form (truncation ~5e-9, below f32 eps).
    let mut p = 1.984_127_0e-4; // 1/7!
    p = p * r + 1.388_888_9e-3; // 1/6!
    p = p * r + 8.333_333_3e-3; // 1/5!
    p = p * r + 4.166_666_8e-2; // 1/4!
    p = p * r + 1.666_666_7e-1; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    let scale = f32::from_bits((shifted.to_bits() << 23).wrapping_add(0x3F80_0000));
    p * scale
}

/// f32 logistic activation via [`fast_exp_f32`] (f32 batched mode only).
#[inline(always)]
pub fn fast_sigmoid_f32(z: f32) -> f32 {
    1.0 / (1.0 + fast_exp_f32(-z))
}

/// f32 `tanh` via [`fast_exp_f32`] (f32 batched mode only).
#[inline(always)]
pub fn fast_tanh_f32(z: f32) -> f32 {
    let t = fast_exp_f32(2.0 * z.clamp(-10.0, 10.0));
    (t - 1.0) / (t + 1.0)
}

macro_rules! slice_kernel {
    ($t:ty, $scalar:ident, $impl_name:ident, $avx2_name:ident, $avx512_name:ident, $pub_name:ident) => {
        #[inline(always)]
        fn $impl_name(xs: &mut [$t]) {
            for v in xs.iter_mut() {
                *v = $scalar(*v);
            }
        }

        /// The portable loop recompiled with AVX2 enabled.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        fn $avx2_name(xs: &mut [$t]) {
            $impl_name(xs)
        }

        /// The portable loop recompiled with AVX-512F enabled.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        fn $avx512_name(xs: &mut [$t]) {
            $impl_name(xs)
        }

        #[doc = concat!(
            "Applies [`", stringify!($scalar), "`] to every element in ",
            "place, routed through the widest vector ISA the running CPU ",
            "supports. Bit-identical to calling the scalar function per ",
            "element (the per-element op sequence is fixed; see the ",
            "module docs), but several times faster on contiguous panel ",
            "rows."
        )]
        #[inline]
        pub fn $pub_name(xs: &mut [$t]) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: the wrapper only requires AVX-512F, which
                    // the runtime check just confirmed on this CPU.
                    return unsafe { $avx512_name(xs) };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: the wrapper only requires AVX2, which the
                    // runtime check just confirmed on this CPU.
                    return unsafe { $avx2_name(xs) };
                }
            }
            $impl_name(xs)
        }
    };
}

slice_kernel!(
    f64, fast_sigmoid,
    sigmoid_slice_impl, sigmoid_slice_avx2, sigmoid_slice_avx512,
    fast_sigmoid_slice
);
slice_kernel!(
    f64, fast_tanh,
    tanh_slice_impl, tanh_slice_avx2, tanh_slice_avx512,
    fast_tanh_slice
);
slice_kernel!(
    f32, fast_sigmoid_f32,
    sigmoid_slice_impl_f32, sigmoid_slice_avx2_f32, sigmoid_slice_avx512_f32,
    fast_sigmoid_slice_f32
);
slice_kernel!(
    f32, fast_tanh_f32,
    tanh_slice_impl_f32, tanh_slice_avx2_f32, tanh_slice_avx512_f32,
    fast_tanh_slice_f32
);

/// Applies a slice kernel to rows `rows` of a lane-major panel
/// (`panel[row * width + lane]`), touching only the `active` leading
/// lanes of each row.
///
/// When the batch is full (`active == width`) the rows are contiguous
/// and the kernel runs once over the whole block; ragged batches fall
/// back to one call per row so masked lanes `active..width` are never
/// read or written — the same masking contract as the GEMM kernels.
/// Either shape applies the same per-element ops, so the results are
/// bit-identical.
pub fn apply_rows<T>(
    panel: &mut [T],
    rows: core::ops::Range<usize>,
    width: usize,
    active: usize,
    kernel: fn(&mut [T]),
) {
    assert!(active <= width, "active={active} exceeds width={width}");
    if active == width {
        kernel(&mut panel[rows.start * width..rows.end * width]);
    } else {
        for r in rows {
            kernel(&mut panel[r * width..r * width + active]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(lo: f64, hi: f64, steps: usize) -> impl Iterator<Item = f64> {
        let span = hi - lo;
        (0..=steps).map(move |i| lo + span * (i as f64) / (steps as f64))
    }

    #[test]
    fn exp_tracks_libm_to_fourteen_digits() {
        for x in sweep(-700.0, 700.0, 40_000) {
            let got = fast_exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-13, "x={x}: got {got:e}, libm {want:e}, rel {rel:e}");
        }
    }

    #[test]
    fn sigmoid_tracks_libm_and_stays_in_unit_interval() {
        let mut prev = 0.0;
        for z in sweep(-60.0, 60.0, 20_000) {
            let got = fast_sigmoid(z);
            let want = 1.0 / (1.0 + (-z).exp());
            assert!((got - want).abs() < 1e-14, "z={z}: {got} vs {want}");
            assert!((0.0..=1.0).contains(&got), "z={z}: {got} out of [0,1]");
            assert!(got >= prev, "z={z}: sigmoid not monotone");
            prev = got;
        }
        assert_eq!(fast_sigmoid(60.0), 1.0);
        assert!(fast_sigmoid(-60.0) > 0.0);
    }

    #[test]
    fn tanh_tracks_libm_and_saturates_exactly() {
        for z in sweep(-25.0, 25.0, 20_000) {
            let got = fast_tanh(z);
            let want = z.tanh();
            assert!((got - want).abs() < 1e-14, "z={z}: {got} vs {want}");
            assert!((-1.0..=1.0).contains(&got), "z={z}: {got} out of [-1,1]");
        }
        assert_eq!(fast_tanh(20.0), 1.0);
        assert_eq!(fast_tanh(-20.0), -1.0);
        assert_eq!(fast_tanh(0.0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn nan_propagates_through_every_kernel() {
        assert!(fast_exp(f64::NAN).is_nan());
        assert!(fast_sigmoid(f64::NAN).is_nan());
        assert!(fast_tanh(f64::NAN).is_nan());
        assert!(fast_exp_f32(f32::NAN).is_nan());
        assert!(fast_sigmoid_f32(f32::NAN).is_nan());
        assert!(fast_tanh_f32(f32::NAN).is_nan());
    }

    #[test]
    fn extremes_saturate_instead_of_overflowing() {
        assert!(fast_exp(1e6).is_finite());
        assert!(fast_exp(-1e6) >= 0.0);
        assert_eq!(fast_sigmoid(1e6), 1.0);
        // exp saturates at e^708 ~ 3e307, so the deep-negative logistic
        // bottoms out subnormal-positive rather than at exactly zero.
        let deep = fast_sigmoid(-1e6);
        assert!(deep > 0.0 && deep < 1e-300, "got {deep:e}");
        assert_eq!(fast_tanh(1e6), 1.0);
        assert_eq!(fast_tanh(-1e6), -1.0);
        assert!(fast_exp(f64::INFINITY).is_finite());
        assert!(fast_exp(f64::NEG_INFINITY) >= 0.0);
    }

    #[test]
    fn f32_variants_track_f64_references() {
        for z in sweep(-30.0, 30.0, 5_000) {
            let zf = z as f32;
            let e = (fast_exp_f32(zf) as f64 - z.exp()).abs() / z.exp();
            assert!(e < 3e-6, "exp f32 z={z}: rel {e:e}");
            let s = (fast_sigmoid_f32(zf) as f64 - 1.0 / (1.0 + (-z).exp())).abs();
            assert!(s < 1e-6, "sigmoid f32 z={z}: abs {s:e}");
            let t = (fast_tanh_f32(zf) as f64 - z.tanh()).abs();
            assert!(t < 1e-6, "tanh f32 z={z}: abs {t:e}");
        }
    }

    #[test]
    fn scalar_and_slice_evaluation_agree_bitwise() {
        // The whole point of the module: evaluating the same inputs
        // one-at-a-time or through the ISA-dispatched slice kernels
        // yields identical bits, because the per-element op sequence is
        // fixed. On an AVX-512 host this exercises the widest path; on
        // older CPUs it degrades to checking the portable loop.
        let inputs: Vec<f64> = sweep(-8.0, 8.0, 257).collect();
        let mut sig = inputs.clone();
        fast_sigmoid_slice(&mut sig);
        let mut tan = inputs.clone();
        fast_tanh_slice(&mut tan);
        for (i, &z) in inputs.iter().enumerate() {
            assert_eq!(sig[i].to_bits(), fast_sigmoid(z).to_bits());
            assert_eq!(tan[i].to_bits(), fast_tanh(z).to_bits());
        }
        let f32s: Vec<f32> = inputs.iter().map(|&z| z as f32).collect();
        let mut sig32 = f32s.clone();
        fast_sigmoid_slice_f32(&mut sig32);
        let mut tan32 = f32s.clone();
        fast_tanh_slice_f32(&mut tan32);
        for (i, &z) in f32s.iter().enumerate() {
            assert_eq!(sig32[i].to_bits(), fast_sigmoid_f32(z).to_bits());
            assert_eq!(tan32[i].to_bits(), fast_tanh_f32(z).to_bits());
        }
    }
}
