//! Variance Inflation Factor (VIF) — the collinearity metric of Section III.
//!
//! The paper's initial study regresses each PID-controller parameter against
//! every other parameter and computes `VIF(x_i) = 1 / (1 - R_i^2)`. A VIF
//! near 1 indicates an independent parameter; above 10 indicates high
//! collinearity. The paper found velocities, accelerations and angular
//! rotations clustered at VIF 22–29 while positions stayed near 1–1.6, which
//! motivates the feature-engineering step of the FFC design.

use crate::float::fmax;
use crate::matrix::Matrix;
use crate::stats::mean;

/// Computes the VIF of column `target` of a feature matrix whose columns are
/// features and whose rows are observations.
///
/// Features are centered before the regression. Columns with (near-)zero
/// variance yield `VIF = 1.0` (they carry no variance to inflate). When the
/// regression is singular — features exactly collinear — `f64::INFINITY` is
/// returned, which callers should read as "maximally collinear".
///
/// # Panics
///
/// Panics if `target >= features.cols()` or the matrix has fewer than 3 rows.
///
/// # Examples
///
/// ```
/// use pidpiper_math::{Matrix, vif};
///
/// // Two independent columns: VIF near 1.
/// let m = Matrix::from_rows(&[
///     vec![1.0, 9.0], vec![2.0, 4.0], vec![3.0, 7.0], vec![4.0, 1.0],
/// ]);
/// assert!(vif(&m, 0) < 3.0);
/// ```
pub fn vif(features: &Matrix, target: usize) -> f64 {
    assert!(target < features.cols(), "target column out of range");
    assert!(features.rows() >= 3, "need at least 3 observations for VIF");
    let n = features.rows();
    let k = features.cols();

    let y_raw = features.col(target);
    let y_mean = mean(&y_raw);
    let y: Vec<f64> = y_raw.iter().map(|v| v - y_mean).collect();
    let ss_tot: f64 = y.iter().map(|v| v * v).sum();
    if ss_tot < 1e-12 {
        // A constant column cannot be inflated.
        return 1.0;
    }

    // Design matrix: all other columns, centered, plus nothing else (the
    // intercept is absorbed by centering).
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut col_means = vec![0.0; k];
    for (c, cm) in col_means.iter_mut().enumerate() {
        *cm = mean(&features.col(c));
    }
    for r in 0..n {
        let mut row = Vec::with_capacity(k - 1);
        for c in 0..k {
            if c == target {
                continue;
            }
            row.push(features[(r, c)] - col_means[c]);
        }
        rows.push(row);
    }
    // Tiny ridge term: duplicated *other* columns (e.g. two identical
    // covariance channels) must not make the regression for an unrelated
    // target singular. The regularization is far below any meaningful
    // signal scale, so VIF values are unaffected to plotting precision.
    let mut y_aug = y.clone();
    for i in 0..k - 1 {
        let mut reg_row = vec![0.0; k - 1];
        reg_row[i] = 1e-6;
        rows.push(reg_row);
        y_aug.push(0.0);
    }
    let design_aug = Matrix::from_rows(&rows);
    // A shape error is impossible here (the design is built above), but a
    // singular system is not; both read as "maximally collinear".
    let Ok(beta) = design_aug.solve_least_squares(&y_aug) else {
        return f64::INFINITY;
    };
    let design = Matrix::from_rows(&rows[..n]);
    let Ok(fitted) = design.matvec(&beta) else {
        return f64::INFINITY;
    };
    let ss_res: f64 = y
        .iter()
        .zip(&fitted)
        .map(|(yi, fi)| (yi - fi) * (yi - fi))
        .sum();
    let r_squared = 1.0 - ss_res / ss_tot;
    if r_squared >= 1.0 - 1e-12 {
        f64::INFINITY
    } else {
        fmax(1.0 / (1.0 - r_squared), 1.0)
    }
}

/// Computes the VIF of every column. See [`vif`].
pub fn vif_all(features: &Matrix) -> Vec<f64> {
    (0..features.cols()).map(|c| vif(features, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn feature_matrix(cols: Vec<Vec<f64>>) -> Matrix {
        let n = cols[0].len();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn independent_columns_have_low_vif() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = feature_matrix(vec![a, b, c]);
        for v in vif_all(&m) {
            assert!(v < 1.5, "independent column has VIF {v}");
        }
    }

    #[test]
    fn collinear_columns_have_high_vif() {
        let mut rng = StdRng::seed_from_u64(8);
        let a: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // b is a + small noise: strongly collinear.
        let b: Vec<f64> = a.iter().map(|x| x + rng.gen_range(-0.05..0.05)).collect();
        let c: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = feature_matrix(vec![a, b, c]);
        let vifs = vif_all(&m);
        assert!(vifs[0] > 10.0, "collinear column VIF {}", vifs[0]);
        assert!(vifs[1] > 10.0, "collinear column VIF {}", vifs[1]);
        assert!(vifs[2] < 2.0, "independent column VIF {}", vifs[2]);
    }

    #[test]
    fn exactly_collinear_is_infinite() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 3.0).collect();
        let m = feature_matrix(vec![a, b]);
        let vifs = vif_all(&m);
        assert!(vifs[0].is_infinite());
        assert!(vifs[1].is_infinite());
    }

    #[test]
    fn constant_column_is_one() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let b = vec![5.0; 50];
        let m = feature_matrix(vec![a, b]);
        assert_eq!(vif(&m, 1), 1.0);
    }

    #[test]
    fn vif_never_below_one() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let cols: Vec<Vec<f64>> = (0..4)
                .map(|_| (0..60).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect();
            let m = feature_matrix(cols);
            for v in vif_all(&m) {
                assert!(v >= 1.0, "VIF {v} below 1");
            }
        }
    }
}
