//! Angle utilities: wrapping, conversion and shortest-path differences.

use std::f64::consts::PI;

/// Converts degrees to radians.
///
/// # Examples
///
/// ```
/// use pidpiper_math::deg_to_rad;
/// assert!((deg_to_rad(180.0) - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
///
/// # Examples
///
/// ```
/// use pidpiper_math::rad_to_deg;
/// assert!((rad_to_deg(std::f64::consts::PI) - 180.0).abs() < 1e-12);
/// ```
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Wraps an angle (radians) into `(-pi, pi]`.
///
/// # Examples
///
/// ```
/// use pidpiper_math::wrap_angle;
/// use std::f64::consts::PI;
/// assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
/// ```
#[inline]
pub fn wrap_angle(angle: f64) -> f64 {
    let mut a = angle % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

/// Shortest signed angular difference `target - current`, wrapped into
/// `(-pi, pi]`. The controller uses this so that a heading error across the
/// +/-pi seam turns the short way round.
#[inline]
pub fn angle_error(target: f64, current: f64) -> f64 {
    wrap_angle(target - current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_invert() {
        for d in [-720.0, -90.0, 0.0, 13.37, 359.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_stays_in_range() {
        for i in -100..=100 {
            let a = i as f64 * 0.37;
            let w = wrap_angle(a);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "wrap({a}) = {w}");
            // Wrapping preserves the angle modulo 2*pi.
            assert!(((w - a) / (2.0 * PI)).fract().abs() < 1e-9 || ((w - a) / (2.0 * PI)).fract().abs() > 1.0 - 1e-9);
        }
    }

    #[test]
    fn error_takes_short_way() {
        // 170 deg to -170 deg should be +20 deg, not -340.
        let e = angle_error(deg_to_rad(-170.0), deg_to_rad(170.0));
        assert!((rad_to_deg(e) - 20.0).abs() < 1e-9);
        let e2 = angle_error(deg_to_rad(170.0), deg_to_rad(-170.0));
        assert!((rad_to_deg(e2) + 20.0).abs() < 1e-9);
    }
}
