//! NaN-safe, deterministic floating-point comparison helpers.
//!
//! The detection and recovery math (CUSUM statistics, DTW costs, variance
//! weights) must order floats without panicking and without depending on
//! `PartialOrd`'s partiality. `partial_cmp().unwrap()` panics on NaN and
//! `f64::max`/`f64::min` silently *drop* NaN operands, so every comparison
//! that can influence a result goes through the [`f64::total_cmp`]-based
//! helpers in this module instead. The workspace analyzer
//! (`pidpiper-analyzer`, rule family `FS*`) enforces this convention.
//!
//! Under total ordering, NaN sorts above `+inf` (and `-NaN` below `-inf`),
//! so a NaN produced upstream propagates to the "worst" end of a max-scan
//! instead of vanishing — corrupted data loses loudly, not silently.

use std::cmp::Ordering;

/// Maximum of two floats under [`f64::total_cmp`].
///
/// Agrees with `f64::max` on non-NaN inputs (for `-0.0` vs `0.0` it
/// deterministically returns `0.0`); unlike `f64::max`, a NaN operand is
/// treated as the largest value and therefore wins, surfacing upstream
/// corruption instead of masking it.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::fmax;
/// assert_eq!(fmax(1.0, 2.0), 2.0);
/// assert!(fmax(1.0, f64::NAN).is_nan());
/// ```
#[inline]
pub fn fmax(a: f64, b: f64) -> f64 {
    match a.total_cmp(&b) {
        Ordering::Less => b,
        _ => a,
    }
}

/// Minimum of two floats under [`f64::total_cmp`].
///
/// Agrees with `f64::min` on non-NaN inputs (for `-0.0` vs `0.0` it
/// deterministically returns `-0.0`). NaN is the largest value under the
/// total order, so `fmin` never selects it over a real number.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::fmin;
/// assert_eq!(fmin(1.0, 2.0), 1.0);
/// assert_eq!(fmin(1.0, f64::NAN), 1.0);
/// ```
#[inline]
pub fn fmin(a: f64, b: f64) -> f64 {
    match a.total_cmp(&b) {
        Ordering::Greater => b,
        _ => a,
    }
}

/// Whether `x` is exactly zero (either sign), without a float `==`.
///
/// Used for sparsity skips and divide-by-zero guards; false for NaN.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::is_zero;
/// assert!(is_zero(0.0) && is_zero(-0.0));
/// assert!(!is_zero(1e-300) && !is_zero(f64::NAN));
/// ```
#[inline]
pub fn is_zero(x: f64) -> bool {
    x.abs() <= 0.0
}

/// Whether `a` and `b` agree to within an absolute tolerance `eps`.
///
/// The NaN-safe replacement for float `==` in assertions and convergence
/// checks: false whenever either operand is NaN.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!approx_eq(1.0, f64::NAN, 1e-9));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Sorts a float slice ascending under the total order (NaN last).
///
/// The panic-free replacement for
/// `sort_by(|a, b| a.partial_cmp(b).unwrap())`: total and deterministic
/// for every input, including NaN and mixed-sign zeros.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::sort_floats;
/// let mut xs = [2.0, f64::NAN, 1.0];
/// sort_floats(&mut xs);
/// assert_eq!(xs[0], 1.0);
/// assert!(xs[2].is_nan());
/// ```
#[inline]
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

/// Index of the largest element under the total order (`None` when empty).
///
/// Ties resolve to the earliest index, so results are independent of
/// iteration accidents. NaN, being largest under the total order, wins —
/// callers scanning for a "worst offender" see corrupted entries first.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::argmax;
/// assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
/// assert_eq!(argmax(&[]), None);
/// ```
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, x) in xs.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(j) if x.total_cmp(&xs[j]) == Ordering::Greater => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Largest value produced by an iterator under the total order.
///
/// Returns `None` for an empty iterator — the panic-free replacement for
/// `iter.max_by(|a, b| a.partial_cmp(b).unwrap())`.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::max_of;
/// assert_eq!(max_of([3.0, 9.0, 4.0]), Some(9.0));
/// assert_eq!(max_of(std::iter::empty()), None);
/// ```
pub fn max_of(iter: impl IntoIterator<Item = f64>) -> Option<f64> {
    iter.into_iter().reduce(fmax)
}

/// Smallest value produced by an iterator under the total order.
///
/// Returns `None` for an empty iterator.
///
/// # Examples
///
/// ```
/// use pidpiper_math::float::min_of;
/// assert_eq!(min_of([3.0, 9.0, 4.0]), Some(3.0));
/// ```
pub fn min_of(iter: impl IntoIterator<Item = f64>) -> Option<f64> {
    iter.into_iter().reduce(fmin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmax_fmin_agree_with_std_on_finite() {
        let xs = [-3.5, -0.0, 0.0, 1.0, 7.25, f64::INFINITY, f64::NEG_INFINITY];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(fmax(a, b), a.max(b), "fmax({a}, {b})");
                assert_eq!(fmin(a, b), a.min(b), "fmin({a}, {b})");
            }
        }
    }

    #[test]
    fn nan_propagates_through_fmax_only() {
        assert!(fmax(f64::NAN, 1e300).is_nan());
        assert!(fmax(1e300, f64::NAN).is_nan());
        assert_eq!(fmin(f64::NAN, 1e300), 1e300);
        assert_eq!(fmin(1e300, f64::NAN), 1e300);
    }

    #[test]
    fn signed_zero_is_deterministic() {
        assert_eq!(fmax(0.0, -0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(fmax(-0.0, 0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(fmin(0.0, -0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(fmin(-0.0, 0.0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn zero_and_approx_checks() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(f64::MIN_POSITIVE));
        assert!(!is_zero(f64::NAN));
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
    }

    #[test]
    fn sorting_handles_nan_and_zeros() {
        let mut xs = [0.0, f64::NAN, -1.0, -0.0, f64::INFINITY];
        sort_floats(&mut xs);
        assert_eq!(xs[0], -1.0);
        assert_eq!(xs[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(xs[2].to_bits(), 0.0f64.to_bits());
        assert_eq!(xs[3], f64::INFINITY);
        assert!(xs[4].is_nan());
    }

    #[test]
    fn argmax_prefers_first_of_equals() {
        assert_eq!(argmax(&[2.0, 7.0, 7.0, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 7.0]), Some(0));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn iterator_extrema() {
        assert_eq!(max_of([1.0, 4.0, 2.0]), Some(4.0));
        assert_eq!(min_of([1.0, 4.0, 2.0]), Some(1.0));
        assert_eq!(max_of(std::iter::empty()), None);
        assert_eq!(min_of(std::iter::empty()), None);
    }
}
