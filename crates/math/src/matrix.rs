//! Small dense matrices with QR factorization and least-squares solving.
//!
//! Used by the SRR baseline's linear system identification (fitting
//! `x(t+1) = A x(t) + B u(t)` by least squares) and by the Variance
//! Inflation Factor regressions of the paper's Section III study.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors produced by matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A solve encountered a (numerically) singular system.
    Singular,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { context } => {
                write!(f, "matrix shape mismatch: {context}")
            }
            MatrixError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major `f64` matrix of runtime-determined shape.
///
/// # Examples
///
/// ```
/// use pidpiper_math::Matrix;
///
/// let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
/// let x = a.solve_least_squares(&[2.0, 8.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                context: format!(
                    "matmul of {}x{} by {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if crate::float::is_zero(a) {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] when `self.cols != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.cols != v.len() {
            return Err(MatrixError::ShapeMismatch {
                context: format!("matvec of {}x{} by len-{}", self.rows, self.cols, v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Solves the least-squares problem `min ||A x - b||` via Householder QR
    /// with column-pivot-free factorization.
    ///
    /// Works for square and overdetermined systems (`rows >= cols`).
    ///
    /// # Errors
    ///
    /// - [`MatrixError::ShapeMismatch`] if `b.len() != rows` or `rows < cols`.
    /// - [`MatrixError::Singular`] if `A` is rank-deficient to working
    ///   precision.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if b.len() != self.rows {
            return Err(MatrixError::ShapeMismatch {
                context: format!("rhs length {} for {} rows", b.len(), self.rows),
            });
        }
        if self.rows < self.cols {
            return Err(MatrixError::ShapeMismatch {
                context: format!("underdetermined system {}x{}", self.rows, self.cols),
            });
        }
        let m = self.rows;
        let n = self.cols;
        let mut a = self.data.clone();
        let mut rhs = b.to_vec();

        // Householder QR applied in place; the reflectors transform rhs too.
        for k in 0..n {
            // Compute the norm of the k-th column below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += a[i * n + k] * a[i * n + k];
            }
            let norm = norm.sqrt();
            if norm < 1e-13 {
                return Err(MatrixError::Singular);
            }
            let alpha = if a[k * n + k] > 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m - k];
            v[0] = a[k * n + k] - alpha;
            for i in (k + 1)..m {
                v[i - k] = a[i * n + k];
            }
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 < 1e-300 {
                continue;
            }
            // Apply H = I - 2 v v^T / (v^T v) to the trailing block and rhs.
            for c in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i - k] * a[i * n + c];
                }
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    a[i * n + c] -= scale * v[i - k];
                }
            }
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * rhs[i];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                rhs[i] -= scale * v[i - k];
            }
            a[k * n + k] = alpha;
        }

        // Back substitution on the upper-triangular R.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = rhs[k];
            for c in (k + 1)..n {
                acc -= a[k * n + c] * x[c];
            }
            let diag = a[k * n + k];
            if diag.abs() < 1e-13 {
                return Err(MatrixError::Singular);
            }
            x[k] = acc / diag;
        }
        Ok(x)
    }

    /// Ordinary least squares of multiple right-hand sides: solves
    /// `min ||A X - B||` column by column, returning `X` (`cols x B.cols`).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::solve_least_squares`].
    pub fn solve_least_squares_multi(&self, b: &Matrix) -> Result<Matrix, MatrixError> {
        if b.rows != self.rows {
            return Err(MatrixError::ShapeMismatch {
                context: format!("B has {} rows, A has {}", b.rows, self.rows),
            });
        }
        let mut x = Matrix::zeros(self.cols, b.cols);
        for c in 0..b.cols {
            let sol = self.solve_least_squares(&b.col(c))?;
            for (r, v) in sol.into_iter().enumerate() {
                x[(r, c)] = v;
            }
        }
        Ok(x)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    /// Accesses entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(v, vec![-2.0, -2.0]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MatrixError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.matvec(&[1.0, 2.0]),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_square_system() {
        // 2x + y = 5; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve_least_squares(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_overdetermined_regression() {
        // Fit y = 2x + 1 through noisy-free samples: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let a = Matrix::from_rows(&rows);
        let beta = a.solve_least_squares(&ys).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        assert_eq!(a.solve_least_squares(&[1.0, 2.0, 3.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn multi_rhs_solve() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![1.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 6.0], vec![3.0, 5.0]]);
        let x = a.solve_least_squares_multi(&b).unwrap();
        // Verify residual is small in a least-squares sense by projecting.
        let ax = a.matmul(&x).unwrap();
        let resid = (0..3)
            .flat_map(|r| (0..2).map(move |c| (r, c)))
            .map(|(r, c)| (ax[(r, c)] - b[(r, c)]).powi(2))
            .sum::<f64>();
        assert!(resid < 1.0, "residual {resid} too large");
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }
}
