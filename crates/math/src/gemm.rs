//! Cache-blocked matrix–matrix micro-kernels for batched FFC inference.
//!
//! The streaming inference path (`pidpiper-ml`) computes one matrix–vector
//! product per session per layer. At fleet scale thousands of sessions
//! share the same weights, so the batched path gathers their input vectors
//! into a column-major *panel* (`x[j * x_stride + lane]`: feature `j` of
//! lane/session `lane`) and computes all columns in one sweep over the
//! weight rows. Each weight element is then loaded once per [`LANES`]
//! sessions instead of once per session, which is where the batched
//! speedup comes from.
//!
//! # Bit-identity contract
//!
//! These kernels are *op-order preserving*: for every output element
//! `(r, c)` the products `a[r][j] * x[j][c]` are summed left to right
//! (ascending `j`) into one scalar accumulator, and the bias (if any) is
//! added exactly once after the sweep — the same shape as
//! `Param::matvec_into` (`acc = Σ w·x; out[r] += acc`) and the fused LSTM
//! step (`z = (bias + w·x) + u·h`, realised here as [`gemm_bias`] for the
//! `w·x` pass followed by [`gemm_acc`] for the `u·h` pass: the two
//! accumulators of the reference reduction). The `k` dimension is **never
//! tiled or split** — that would reassociate the sum and break `to_bits`
//! equality with the per-session path. Columns are blocked [`LANES`] at a
//! time and rows [`ROW_BLOCK`] at a time purely for instruction-level
//! parallelism: every `(r, c)` accumulator is still its own serial chain
//! over `j`, so blocking changes no f64 operation — it only gives the CPU
//! `ROW_BLOCK` independent chains to overlap the FP-add latency with (a
//! single chain caps the whole kernel at one vector-add per ~4 cycles).
//! Remainder rows (`m % ROW_BLOCK`) run one chain, remainder columns
//! (`n % LANES`) one scalar accumulator per column — slower, still
//! bit-identical.
//!
//! Rust does not contract `a * b + c` into a fused multiply-add without an
//! explicit `mul_add`, so the kernels round after every multiply and every
//! add, exactly like the scalar path. That also makes the ISA dispatch
//! below safe: AVX2/AVX-512 lanes perform the same individually-rounded
//! IEEE multiply and add as the scalar baseline, so every path returns the
//! same bits — a property `generic_and_dispatched_paths_agree_bitwise`
//! pins on whatever hardware the tests run on.
//!
//! # Runtime ISA dispatch
//!
//! The portable body is compiled three times on `x86_64` — baseline,
//! `avx2`, `avx512f` — and the public entry points select the widest
//! variant the running CPU supports (`is_x86_feature_detected!`). The
//! crate keeps its safety story trivial: the `unsafe` blocks below are
//! *only* the feature-gated calls, each guarded by the corresponding
//! runtime check, and the kernel bodies themselves are ordinary safe Rust.
//!
//! All kernels take explicit row strides (`lda`, `x_stride`, `out_stride`)
//! so a panel allocated for a capacity-`B` batch can process any
//! `n <= B` active columns in place; columns `n..B` are simply never read
//! or written (masked lanes).

/// Column-block width of the micro-kernels.
///
/// Eight f64 lanes span one 512-bit or two 256-bit vector registers; the
/// accumulator tile fits in registers on every target we care about, and
/// the remainder loop handles `n % LANES` columns scalar-wise.
pub const LANES: usize = 8;

/// Row-block height: independent accumulator chains per column block.
///
/// Four rows × [`LANES`] lanes is 32 accumulators — four 512-bit (or
/// eight 256-bit) registers, enough in-flight FP-add chains to hide the
/// ~4-cycle add latency without spilling on AVX2's 16-register file.
pub const ROW_BLOCK: usize = 4;

/// A [`LANES`]-wide view starting at `base`, as a fixed-size array
/// reference. The array type carries the length into the loop bodies, so
/// LLVM sees constant-trip-count lane loops (one bounds check here, none
/// inside) and vectorizes them; a plain sub-slice leaves a length the
/// optimizer must re-prove at every use.
#[inline(always)]
fn lanes<T>(s: &[T], base: usize) -> &[T; LANES] {
    s[base..base + LANES].try_into().expect("LANES-wide view")
}

/// Mutable counterpart of [`lanes`].
#[inline(always)]
fn lanes_mut<T>(s: &mut [T], base: usize) -> &mut [T; LANES] {
    (&mut s[base..base + LANES]).try_into().expect("LANES-wide view")
}

macro_rules! gemm_kernels {
    (
        $t:ty, $tname:literal,
        $impl_name:ident, $avx2_name:ident, $avx512_name:ident, $dispatch_name:ident,
        $bias_name:ident, $acc_name:ident
    ) => {
        /// Portable kernel body (monomorphic, `#[inline(always)]` so the
        /// feature-gated wrappers recompile it under their ISA). `bias`
        /// selects the store flavour: `Some` writes `bias[r] + acc`,
        /// `None` performs `out += acc` — both a single rounding step, as
        /// the reference reductions require.
        #[allow(clippy::too_many_arguments)] // a GEMM is its shape; a config struct would just rename the arguments
        #[inline(always)]
        fn $impl_name(
            a: &[$t],
            lda: usize,
            m: usize,
            k: usize,
            bias: Option<&[$t]>,
            x: &[$t],
            x_stride: usize,
            out: &mut [$t],
            out_stride: usize,
            n: usize,
        ) {
            let mut cc = 0;
            // Quad-width column tiles first: 4 rows x 32 lanes keeps 16
            // accumulator vectors in flight (fits AVX-512's 32-register
            // file), amortizes the four weight broadcasts over 128 MACs
            // per `j`, and sweeps the weight rows a quarter as often per
            // active column.
            while cc + 4 * LANES <= n {
                let mut r = 0;
                while r + ROW_BLOCK <= m {
                    let (b0, b1) = (r * lda, (r + 1) * lda);
                    let (b2, b3) = ((r + 2) * lda, (r + 3) * lda);
                    let r0 = &a[b0..b0 + k];
                    let r1 = &a[b1..b1 + k];
                    let r2 = &a[b2..b2 + k];
                    let r3 = &a[b3..b3 + k];
                    let mut acc = [[0.0 as $t; LANES]; 16];
                    for j in 0..k {
                        let base = j * x_stride + cc;
                        let (w0, w1, w2, w3) = (r0[j], r1[j], r2[j], r3[j]);
                        for q in 0..4 {
                            let xq = lanes(x, base + q * LANES);
                            for l in 0..LANES {
                                acc[4 * q][l] += w0 * xq[l];
                                acc[4 * q + 1][l] += w1 * xq[l];
                                acc[4 * q + 2][l] += w2 * xq[l];
                                acc[4 * q + 3][l] += w3 * xq[l];
                            }
                        }
                    }
                    for q in 0..4 {
                        for i in 0..ROW_BLOCK {
                            let o = lanes_mut(out, (r + i) * out_stride + cc + q * LANES);
                            let av = &acc[4 * q + i];
                            match bias {
                                Some(b) => {
                                    let br = b[r + i];
                                    for l in 0..LANES {
                                        o[l] = br + av[l];
                                    }
                                }
                                None => {
                                    for l in 0..LANES {
                                        o[l] += av[l];
                                    }
                                }
                            }
                        }
                    }
                    r += ROW_BLOCK;
                }
                while r < m {
                    let row = &a[r * lda..r * lda + k];
                    let mut acc = [[0.0 as $t; LANES]; 4];
                    for (j, &w) in row.iter().enumerate() {
                        let base = j * x_stride + cc;
                        for (q, av) in acc.iter_mut().enumerate() {
                            let xq = lanes(x, base + q * LANES);
                            for l in 0..LANES {
                                av[l] += w * xq[l];
                            }
                        }
                    }
                    for (q, av) in acc.iter().enumerate() {
                        let o = lanes_mut(out, r * out_stride + cc + q * LANES);
                        match bias {
                            Some(b) => {
                                let br = b[r];
                                for (o_l, &a_l) in o.iter_mut().zip(av) {
                                    *o_l = br + a_l;
                                }
                            }
                            None => {
                                for (o_l, &a_l) in o.iter_mut().zip(av) {
                                    *o_l += a_l;
                                }
                            }
                        }
                    }
                    r += 1;
                }
                cc += 4 * LANES;
            }
            // Single-width column tile for a remaining LANES-wide block.
            while cc + LANES <= n {
                let mut r = 0;
                while r + ROW_BLOCK <= m {
                    let (b0, b1) = (r * lda, (r + 1) * lda);
                    let (b2, b3) = ((r + 2) * lda, (r + 3) * lda);
                    let r0 = &a[b0..b0 + k];
                    let r1 = &a[b1..b1 + k];
                    let r2 = &a[b2..b2 + k];
                    let r3 = &a[b3..b3 + k];
                    let mut acc0 = [0.0 as $t; LANES];
                    let mut acc1 = [0.0 as $t; LANES];
                    let mut acc2 = [0.0 as $t; LANES];
                    let mut acc3 = [0.0 as $t; LANES];
                    for j in 0..k {
                        let xr = lanes(x, j * x_stride + cc);
                        let (w0, w1, w2, w3) = (r0[j], r1[j], r2[j], r3[j]);
                        for l in 0..LANES {
                            acc0[l] += w0 * xr[l];
                            acc1[l] += w1 * xr[l];
                            acc2[l] += w2 * xr[l];
                            acc3[l] += w3 * xr[l];
                        }
                    }
                    for (i, acc) in [&acc0, &acc1, &acc2, &acc3].into_iter().enumerate() {
                        let o = lanes_mut(out, (r + i) * out_stride + cc);
                        match bias {
                            Some(b) => {
                                let br = b[r + i];
                                for l in 0..LANES {
                                    o[l] = br + acc[l];
                                }
                            }
                            None => {
                                for l in 0..LANES {
                                    o[l] += acc[l];
                                }
                            }
                        }
                    }
                    r += ROW_BLOCK;
                }
                while r < m {
                    let row = &a[r * lda..r * lda + k];
                    let mut acc = [0.0 as $t; LANES];
                    for (j, &w) in row.iter().enumerate() {
                        let xr = lanes(x, j * x_stride + cc);
                        for (a_l, &x_l) in acc.iter_mut().zip(xr) {
                            *a_l += w * x_l;
                        }
                    }
                    let o = lanes_mut(out, r * out_stride + cc);
                    match bias {
                        Some(b) => {
                            let br = b[r];
                            for (o_l, &a_l) in o.iter_mut().zip(&acc) {
                                *o_l = br + a_l;
                            }
                        }
                        None => {
                            for (o_l, &a_l) in o.iter_mut().zip(&acc) {
                                *o_l += a_l;
                            }
                        }
                    }
                    r += 1;
                }
                cc += LANES;
            }
            // Scalar remainder columns (n % LANES).
            for c in cc..n {
                for r in 0..m {
                    let row = &a[r * lda..r * lda + k];
                    let mut acc = 0.0 as $t;
                    for (j, &w) in row.iter().enumerate() {
                        acc += w * x[j * x_stride + c];
                    }
                    match bias {
                        Some(b) => out[r * out_stride + c] = b[r] + acc,
                        None => out[r * out_stride + c] += acc,
                    }
                }
            }
        }

        /// The portable body recompiled with AVX2 enabled (same IEEE ops,
        /// wider registers).
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        fn $avx2_name(
            a: &[$t],
            lda: usize,
            m: usize,
            k: usize,
            bias: Option<&[$t]>,
            x: &[$t],
            x_stride: usize,
            out: &mut [$t],
            out_stride: usize,
            n: usize,
        ) {
            $impl_name(a, lda, m, k, bias, x, x_stride, out, out_stride, n)
        }

        /// The portable body recompiled with AVX-512F enabled.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::too_many_arguments)]
        fn $avx512_name(
            a: &[$t],
            lda: usize,
            m: usize,
            k: usize,
            bias: Option<&[$t]>,
            x: &[$t],
            x_stride: usize,
            out: &mut [$t],
            out_stride: usize,
            n: usize,
        ) {
            $impl_name(a, lda, m, k, bias, x, x_stride, out, out_stride, n)
        }

        /// Selects the widest ISA variant the running CPU supports.
        #[allow(clippy::too_many_arguments)]
        fn $dispatch_name(
            a: &[$t],
            lda: usize,
            m: usize,
            k: usize,
            bias: Option<&[$t]>,
            x: &[$t],
            x_stride: usize,
            out: &mut [$t],
            out_stride: usize,
            n: usize,
        ) {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    // SAFETY: the avx512f wrapper only requires the
                    // AVX-512F target feature, which the runtime check
                    // just confirmed on this CPU.
                    return unsafe {
                        $avx512_name(a, lda, m, k, bias, x, x_stride, out, out_stride, n)
                    };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: the avx2 wrapper only requires the AVX2
                    // target feature, which the runtime check just
                    // confirmed on this CPU.
                    return unsafe {
                        $avx2_name(a, lda, m, k, bias, x, x_stride, out, out_stride, n)
                    };
                }
            }
            $impl_name(a, lda, m, k, bias, x, x_stride, out, out_stride, n)
        }

        #[doc = concat!(
            "Panel product with bias preload (`", $tname, "`): for every ",
            "`r < m`, `c < n` sets `out[r * out_stride + c] = bias[r] + ",
            "Σ_j a[r * lda + j] * x[j * x_stride + c]` (ascending `j`, one ",
            "accumulator per element — see the module docs for the ",
            "bit-identity argument)."
        )]
        ///
        /// # Panics
        ///
        /// Panics if any slice is too short for the requested shape or if
        /// `n` exceeds `x_stride` / `out_stride`.
        #[allow(clippy::too_many_arguments)] // a GEMM is its shape; a config struct would just rename the arguments
        pub fn $bias_name(
            a: &[$t],
            lda: usize,
            m: usize,
            k: usize,
            bias: &[$t],
            x: &[$t],
            x_stride: usize,
            out: &mut [$t],
            out_stride: usize,
            n: usize,
        ) {
            check_shapes(a.len(), lda, m, k, x.len(), x_stride, out.len(), out_stride, n);
            assert!(bias.len() >= m, "bias too short: {} < {m}", bias.len());
            $dispatch_name(a, lda, m, k, Some(bias), x, x_stride, out, out_stride, n)
        }

        #[doc = concat!(
            "Accumulating panel product (`", $tname, "`): for every ",
            "`r < m`, `c < n` performs `out[r * out_stride + c] += ",
            "Σ_j a[r * lda + j] * x[j * x_stride + c]` (ascending `j`, one ",
            "accumulator per element, added to `out` in a single `+=` — ",
            "the second accumulator of the fused-LSTM reduction)."
        )]
        ///
        /// # Panics
        ///
        /// Panics if any slice is too short for the requested shape or if
        /// `n` exceeds `x_stride` / `out_stride`.
        #[allow(clippy::too_many_arguments)] // a GEMM is its shape; a config struct would just rename the arguments
        pub fn $acc_name(
            a: &[$t],
            lda: usize,
            m: usize,
            k: usize,
            x: &[$t],
            x_stride: usize,
            out: &mut [$t],
            out_stride: usize,
            n: usize,
        ) {
            check_shapes(a.len(), lda, m, k, x.len(), x_stride, out.len(), out_stride, n);
            $dispatch_name(a, lda, m, k, None, x, x_stride, out, out_stride, n)
        }
    };
}

gemm_kernels!(
    f64, "f64",
    gemm_impl_f64, gemm_avx2_f64, gemm_avx512_f64, gemm_dispatch_f64,
    gemm_bias, gemm_acc
);
gemm_kernels!(
    f32, "f32",
    gemm_impl_f32, gemm_avx2_f32, gemm_avx512_f32, gemm_dispatch_f32,
    gemm_bias_f32, gemm_acc_f32
);

/// Shared bounds checks: `a` must hold `m` rows of `k` at stride `lda`,
/// `x` must hold `k` panel rows at `x_stride`, `out` must hold `m` panel
/// rows at `out_stride`, and `n` active columns must fit both strides.
/// The final row of each panel may be truncated after its `n` active
/// columns, so column-offset sub-panel views (`&panel[off..]`) are
/// valid inputs as long as the active width still fits.
#[allow(clippy::too_many_arguments)] // mirrors the kernel signatures it validates
fn check_shapes(
    a_len: usize,
    lda: usize,
    m: usize,
    k: usize,
    x_len: usize,
    x_stride: usize,
    out_len: usize,
    out_stride: usize,
    n: usize,
) {
    assert!(lda >= k, "row stride lda={lda} shorter than k={k}");
    assert!(n <= x_stride, "n={n} exceeds x_stride={x_stride}");
    assert!(n <= out_stride, "n={n} exceeds out_stride={out_stride}");
    if m > 0 && k > 0 {
        assert!(
            a_len >= (m - 1) * lda + k,
            "a too short: {a_len} < {}",
            (m - 1) * lda + k
        );
    }
    if k > 0 && n > 0 {
        assert!(
            x_len >= (k - 1) * x_stride + n,
            "x too short: {x_len} < {}",
            (k - 1) * x_stride + n
        );
    }
    if m > 0 && n > 0 {
        assert!(
            out_len >= (m - 1) * out_stride + n,
            "out too short: {out_len} < {}",
            (m - 1) * out_stride + n
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar reference: `Param::matvec_into`'s op order per column.
    fn matvec_ref(a: &[f64], lda: usize, m: usize, k: usize, x_col: &[f64]) -> Vec<f64> {
        (0..m)
            .map(|r| {
                let mut acc = 0.0;
                for (j, xv) in x_col.iter().enumerate().take(k) {
                    acc += a[r * lda + j] * xv;
                }
                acc
            })
            .collect()
    }

    fn fill(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn gemm_bias_matches_per_column_matvec_bitwise() {
        // Exercise lane-multiple, remainder, and singleton widths, with
        // row counts straddling the ROW_BLOCK tiles.
        for &n in &[1usize, 7, 8, 9, 24, 61] {
            for &m in &[1usize, 3, 4, 5, 8, 11] {
                let (k, lda) = (11usize, 13usize); // lda > k: fused-row sub-view
                let stride = n + 3; // panel wider than the active width
                let a = fill(1, m * lda);
                let bias = fill(2, m);
                let x = fill(3, k * stride);
                let mut out = vec![f64::NAN; m * stride];
                gemm_bias(&a, lda, m, k, &bias, &x, stride, &mut out, stride, n);
                for c in 0..n {
                    let col: Vec<f64> = (0..k).map(|j| x[j * stride + c]).collect();
                    let want = matvec_ref(&a, lda, m, k, &col);
                    for r in 0..m {
                        let got = out[r * stride + c];
                        let expect = bias[r] + want[r];
                        assert_eq!(got.to_bits(), expect.to_bits(), "n={n} m={m} r={r} c={c}");
                    }
                }
                // Masked lanes beyond n stay untouched.
                for r in 0..m {
                    for c in n..stride {
                        assert!(out[r * stride + c].is_nan(), "lane {c} written at n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_acc_accumulates_on_existing_out_bitwise() {
        let (m, k, n) = (6usize, 9usize, 17usize);
        let a = fill(4, m * k);
        let x = fill(5, k * n);
        let base = fill(6, m * n);
        let mut out = base.clone();
        gemm_acc(&a, k, m, k, &x, n, &mut out, n, n);
        for c in 0..n {
            let col: Vec<f64> = (0..k).map(|j| x[j * n + c]).collect();
            let want = matvec_ref(&a, k, m, k, &col);
            for r in 0..m {
                let expect = base[r * n + c] + want[r];
                assert_eq!(out[r * n + c].to_bits(), expect.to_bits(), "r={r} c={c}");
            }
        }
    }

    #[test]
    fn two_pass_bias_then_acc_matches_fused_lstm_reduction() {
        // (bias + w·x) + u·h with two accumulators, per column.
        let (m, kw, ku, n) = (8usize, 6usize, 8usize, 10usize);
        let lda = kw + ku; // fused rows [w_row | u_row]
        let rows = fill(7, m * lda);
        let bias = fill(8, m);
        let xp = fill(9, kw * n);
        let hp = fill(10, ku * n);
        let mut out = vec![0.0; m * n];
        gemm_bias(&rows, lda, m, kw, &bias, &xp, n, &mut out, n, n);
        gemm_acc(&rows[kw..], lda, m, ku, &hp, n, &mut out, n, n);
        for c in 0..n {
            for r in 0..m {
                let row = &rows[r * lda..(r + 1) * lda];
                let (wx, uh) = row.split_at(kw);
                let mut acc = 0.0;
                for (j, w) in wx.iter().enumerate() {
                    acc += w * xp[j * n + c];
                }
                let mut z = bias[r] + acc;
                let mut acc = 0.0;
                for (j, w) in uh.iter().enumerate() {
                    acc += w * hp[j * n + c];
                }
                z += acc;
                assert_eq!(out[r * n + c].to_bits(), z.to_bits(), "r={r} c={c}");
            }
        }
    }

    #[test]
    fn generic_and_dispatched_paths_agree_bitwise() {
        // The public entry points may route through AVX2/AVX-512 on this
        // machine; their output must match the portable body exactly.
        let (m, k, n) = (9usize, 14usize, 19usize);
        let a = fill(20, m * k);
        let bias = fill(21, m);
        let x = fill(22, k * n);
        let mut dispatched = vec![0.0; m * n];
        let mut portable = vec![0.0; m * n];
        gemm_bias(&a, k, m, k, &bias, &x, n, &mut dispatched, n, n);
        gemm_impl_f64(&a, k, m, k, Some(&bias), &x, n, &mut portable, n, n);
        for (d, p) in dispatched.iter().zip(&portable) {
            assert_eq!(d.to_bits(), p.to_bits());
        }
        gemm_acc(&a, k, m, k, &x, n, &mut dispatched, n, n);
        gemm_impl_f64(&a, k, m, k, None, &x, n, &mut portable, n, n);
        for (d, p) in dispatched.iter().zip(&portable) {
            assert_eq!(d.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn f32_kernels_match_f32_scalar_reference() {
        let (m, k, n) = (4usize, 5usize, 11usize);
        let a: Vec<f32> = fill(11, m * k).iter().map(|&v| v as f32).collect();
        let bias: Vec<f32> = fill(12, m).iter().map(|&v| v as f32).collect();
        let x: Vec<f32> = fill(13, k * n).iter().map(|&v| v as f32).collect();
        let mut out = vec![0.0f32; m * n];
        gemm_bias_f32(&a, k, m, k, &bias, &x, n, &mut out, n, n);
        gemm_acc_f32(&a, k, m, k, &x, n, &mut out, n, n);
        for c in 0..n {
            for r in 0..m {
                let mut acc = 0.0f32;
                for j in 0..k {
                    acc += a[r * k + j] * x[j * n + c];
                }
                let mut z = bias[r] + acc;
                let mut acc = 0.0f32;
                for j in 0..k {
                    acc += a[r * k + j] * x[j * n + c];
                }
                z += acc;
                assert_eq!(out[r * n + c].to_bits(), z.to_bits(), "r={r} c={c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds x_stride")]
    fn rejects_active_width_beyond_panel_stride() {
        let a = vec![0.0; 4];
        let x = vec![0.0; 4];
        let mut out = vec![0.0; 4];
        gemm_acc(&a, 2, 2, 2, &x, 2, &mut out, 4, 3);
    }
}
