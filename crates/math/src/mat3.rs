//! 3x3 matrices: rotation matrices from Euler angles and inertia tensors.

use crate::vec3::Vec3;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major 3x3 `f64` matrix.
///
/// Primarily used for body-to-world rotation matrices (Z-Y-X Euler
/// convention, i.e. yaw–pitch–roll) and diagonal inertia tensors in the
/// rigid-body simulator.
///
/// # Examples
///
/// ```
/// use pidpiper_math::{Mat3, Vec3};
///
/// // Identity leaves vectors unchanged.
/// let v = Vec3::new(1.0, 2.0, 3.0);
/// assert_eq!(Mat3::identity() * v, v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major entries `m[row][col]`.
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Mat3 {
    /// The identity matrix.
    #[inline]
    pub fn identity() -> Self {
        Mat3::diagonal(Vec3::splat(1.0))
    }

    /// The zero matrix.
    #[inline]
    pub fn zero() -> Self {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    /// A diagonal matrix with diagonal `d`.
    #[inline]
    pub fn diagonal(d: Vec3) -> Self {
        let mut m = [[0.0; 3]; 3];
        m[0][0] = d.x;
        m[1][1] = d.y;
        m[2][2] = d.z;
        Mat3 { m }
    }

    /// Constructs a matrix from three rows.
    #[inline]
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Mat3 {
            m: [r0.to_array(), r1.to_array(), r2.to_array()],
        }
    }

    /// Body-to-world rotation matrix for Z-Y-X (yaw `psi`, pitch `theta`,
    /// roll `phi`) Euler angles, the convention used by ArduPilot-style
    /// autopilots.
    ///
    /// A vector expressed in the body frame is mapped into the world (ENU)
    /// frame by `R * v_body`.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Self {
        let (sr, cr) = roll.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        let (sy, cy) = yaw.sin_cos();
        Mat3 {
            m: [
                [cy * cp, cy * sp * sr - sy * cr, cy * sp * cr + sy * sr],
                [sy * cp, sy * sp * sr + cy * cr, sy * sp * cr - cy * sr],
                [-sp, cp * sr, cp * cr],
            ],
        }
    }

    /// The transpose (equal to the inverse for rotation matrices).
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let mut t = [[0.0; 3]; 3];
        for (r, row) in self.m.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                t[c][r] = v;
            }
        }
        Mat3 { m: t }
    }

    /// Extracts Z-Y-X Euler angles `(roll, pitch, yaw)` from a rotation
    /// matrix. Pitch is clamped into `[-pi/2, pi/2]` (gimbal-lock safe).
    pub fn to_euler(&self) -> (f64, f64, f64) {
        let pitch = (-self.m[2][0]).clamp(-1.0, 1.0).asin();
        let roll = self.m[2][1].atan2(self.m[2][2]);
        let yaw = self.m[1][0].atan2(self.m[0][0]);
        (roll, pitch, yaw)
    }

    /// The matrix determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// The inverse of a diagonal matrix.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if any diagonal entry is zero. Intended for
    /// inertia tensors, which are strictly positive.
    #[inline]
    pub fn diagonal_inverse(&self) -> Mat3 {
        debug_assert!(
            !crate::float::is_zero(self.m[0][0])
                && !crate::float::is_zero(self.m[1][1])
                && !crate::float::is_zero(self.m[2][2]),
            "diagonal_inverse on singular diagonal"
        );
        Mat3::diagonal(Vec3::new(
            1.0 / self.m[0][0],
            1.0 / self.m[1][1],
            1.0 / self.m[2][2],
        ))
    }

    /// Row `r` as a vector.
    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::from_array(self.m[r])
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, out_row) in out.iter_mut().enumerate() {
            for (c, cell) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, rhs_row) in rhs.m.iter().enumerate() {
                    acc += self.m[r][k] * rhs_row[c];
                }
                *cell = acc;
            }
        }
        Mat3 { m: out }
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = self.m;
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v += rhs.m[r][c];
            }
        }
        Mat3 { m: out }
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = self.m;
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v -= rhs.m[r][c];
            }
        }
        Mat3 { m: out }
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self.m;
        for row in out.iter_mut() {
            for v in row.iter_mut() {
                *v *= s;
            }
        }
        Mat3 { m: out }
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{:.4} {:.4} {:.4}]", row[0], row[1], row[2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg_to_rad;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::identity() * v, v);
        let r = Mat3::from_euler(0.3, -0.2, 1.0);
        let prod = Mat3::identity() * r;
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(prod.m[i][j], r.m[i][j], 1e-14));
            }
        }
    }

    #[test]
    fn rotation_is_orthonormal() {
        let r = Mat3::from_euler(0.4, -0.7, 2.1);
        let should_be_identity = r * r.transpose();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(should_be_identity.m[i][j], expect, 1e-12));
            }
        }
        assert!(approx(r.determinant(), 1.0, 1e-12));
    }

    #[test]
    fn euler_round_trip() {
        for &(roll, pitch, yaw) in &[
            (0.0, 0.0, 0.0),
            (0.3, -0.4, 1.2),
            (-1.0, 0.5, -2.5),
            (0.01, 1.2, 3.0),
        ] {
            let r = Mat3::from_euler(roll, pitch, yaw);
            let (r2, p2, y2) = r.to_euler();
            assert!(approx(roll, r2, 1e-10), "roll {roll} vs {r2}");
            assert!(approx(pitch, p2, 1e-10), "pitch {pitch} vs {p2}");
            assert!(approx(yaw, y2, 1e-10), "yaw {yaw} vs {y2}");
        }
    }

    #[test]
    fn yaw_rotates_x_towards_y() {
        // ENU: +90 degrees yaw maps body-x (forward) onto world +Y? With
        // standard Z-Y-X convention, yaw rotates about +Z: x -> (cos, sin, 0).
        let r = Mat3::from_euler(0.0, 0.0, deg_to_rad(90.0));
        let v = r * Vec3::unit_x();
        assert!(approx(v.x, 0.0, 1e-12));
        assert!(approx(v.y, 1.0, 1e-12));
    }

    #[test]
    fn thrust_tilts_with_roll() {
        // Positive roll tilts the body-z axis so that world-frame thrust
        // acquires a -Y? component: z_world = R * z_body.
        let r = Mat3::from_euler(deg_to_rad(10.0), 0.0, 0.0);
        let z = r * Vec3::unit_z();
        // roll > 0 about body-x: z tips towards -y in this convention.
        assert!(z.y < 0.0);
        assert!(z.z > 0.9);
    }

    #[test]
    fn diagonal_inverse_works() {
        let d = Mat3::diagonal(Vec3::new(2.0, 4.0, 8.0));
        let inv = d.diagonal_inverse();
        let prod = d * inv;
        for i in 0..3 {
            assert!(approx(prod.m[i][i], 1.0, 1e-14));
        }
    }
}
