//! A minimal 3-component vector used throughout the simulator and controllers.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component `f64` vector.
///
/// Used for positions, velocities, accelerations, Euler-angle triples and
/// body rates. All operations are component-wise unless documented otherwise.
///
/// # Examples
///
/// ```
/// use pidpiper_math::Vec3;
///
/// let v = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v + Vec3::unit_z(), Vec3::new(3.0, 4.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (East in the simulator's ENU frame).
    pub x: f64,
    /// Y component (North in the simulator's ENU frame).
    pub y: f64,
    /// Z component (Up in the simulator's ENU frame).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// The unit vector along X.
    #[inline]
    pub const fn unit_x() -> Self {
        Vec3::new(1.0, 0.0, 0.0)
    }

    /// The unit vector along Y.
    #[inline]
    pub const fn unit_y() -> Self {
        Vec3::new(0.0, 1.0, 0.0)
    }

    /// The unit vector along Z.
    #[inline]
    pub const fn unit_z() -> Self {
        Vec3::new(0.0, 0.0, 1.0)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Norm of the XY (horizontal) components only.
    #[inline]
    pub fn norm_xy(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Returns the unit vector in the same direction, or zero if the vector
    /// is shorter than `1e-12`.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Clamps the vector's norm to at most `max_norm`, preserving direction.
    ///
    /// Used to enforce velocity/acceleration limits in the controllers.
    #[inline]
    pub fn clamp_norm(self, max_norm: f64) -> Vec3 {
        debug_assert!(max_norm >= 0.0, "max_norm must be non-negative");
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            self * (max_norm / n)
        } else {
            self
        }
    }

    /// Clamps each component into `[-limit, limit]`.
    #[inline]
    pub fn clamp_components(self, limit: f64) -> Vec3 {
        Vec3::new(
            self.x.clamp(-limit, limit),
            self.y.clamp(-limit, limit),
            self.z.clamp(-limit, limit),
        )
    }

    /// Linear interpolation: `self * (1 - t) + other * t`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + other * t
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (XY-plane) distance to another point.
    #[inline]
    pub fn distance_xy(self, other: Vec3) -> f64 {
        (self - other).norm_xy()
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as a fixed-size array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Creates a vector from a `[x, y, z]` array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }

    /// The component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// The largest component (NaN components win, surfacing corruption).
    #[inline]
    pub fn max_component(self) -> f64 {
        crate::float::fmax(crate::float::fmax(self.x, self.y), self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    /// Indexes the vector: 0 → x, 1 → y, 2 → z.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        match index {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> [f64; 3] {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::unit_x();
        let y = Vec3::unit_y();
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::unit_z());
        assert_eq!(y.cross(x), -Vec3::unit_z());
    }

    #[test]
    fn norm_and_normalize() {
        let v = Vec3::new(0.0, 3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn clamp_norm_preserves_direction() {
        let v = Vec3::new(10.0, 0.0, 0.0);
        let c = v.clamp_norm(2.0);
        assert_eq!(c, Vec3::new(2.0, 0.0, 0.0));
        // Short vectors are untouched.
        assert_eq!(Vec3::new(0.5, 0.0, 0.0).clamp_norm(2.0), Vec3::new(0.5, 0.0, 0.0));
    }

    #[test]
    fn index_access() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        v[2] = 9.0;
        assert_eq!(v.z, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn distances() {
        let a = Vec3::new(0.0, 0.0, 10.0);
        let b = Vec3::new(3.0, 4.0, 10.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_xy(b), 5.0);
        let c = Vec3::new(0.0, 0.0, 0.0);
        assert_eq!(a.distance_xy(c), 0.0);
    }
}
