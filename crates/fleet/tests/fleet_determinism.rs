//! Fleet-level guarantees: bit-identical per-session results across
//! worker and shard counts, and typed, non-blocking admission control.

use pidpiper_faults::FaultSchedule;
use pidpiper_fleet::{
    Admission, AdmissionError, FleetConfig, FleetEngine, SessionSpec,
};
use pidpiper_missions::MissionBudget;

const SEED: u64 = 99;

fn spec(id: u64) -> SessionSpec {
    let mut s = SessionSpec::new(id, id.wrapping_mul(0x9E37_79B9).rotate_left(17) ^ 0xABCD);
    if id.is_multiple_of(8) {
        s = s.with_fault(
            FaultSchedule::Intermittent {
                start: 0.5,
                on: 0.8,
                off: 2.0,
            }
            .shifted(0.03 * (id % 101) as f64),
        );
    }
    if id.is_multiple_of(64) {
        // Retires mid-run: retirement timing is part of the contract.
        s = s.with_budget(MissionBudget::default().with_step_budget(30));
    }
    s
}

fn build_and_run(shards: usize, workers: usize, sessions: u64, ticks: usize) -> FleetEngine {
    let mut engine = FleetEngine::with_synthetic_model(
        FleetConfig {
            shards,
            workers,
            shard_capacity: sessions as usize,
            pending_capacity: sessions as usize,
            ..FleetConfig::default()
        },
        SEED,
    );
    for id in 0..sessions {
        engine.submit(spec(id)).expect("capacity covers the fleet");
    }
    engine.run_ticks(ticks);
    engine
}

/// The tentpole guarantee: per-session trace fingerprints are
/// bit-identical regardless of worker count (serial vs threaded fleet
/// ticks), including sessions that retired mid-run.
#[test]
fn fingerprints_invariant_across_worker_counts() {
    let serial = build_and_run(8, 1, 192, 60);
    for workers in [2, 3, 8] {
        let parallel = build_and_run(8, workers, 192, 60);
        assert_eq!(
            serial.session_fingerprints(),
            parallel.session_fingerprints(),
            "worker count {workers} changed per-session results"
        );
    }
    // Retirements happened and their timing agreed too.
    assert!(serial.stats().retired > 0, "budget mix must retire sessions");
    assert_eq!(serial.stats().join_failures, 0);
}

/// Given full admission, shard count is also invisible to per-session
/// results: sessions depend only on their spec and tick count, never on
/// placement.
#[test]
fn fingerprints_invariant_across_shard_counts() {
    let base = build_and_run(8, 2, 160, 45);
    for shards in [1, 5, 32] {
        let resharded = build_and_run(shards, 2, 160, 45);
        assert_eq!(
            base.session_fingerprints(),
            resharded.session_fingerprints(),
            "shard count {shards} changed per-session results"
        );
    }
}

/// Admission control: beyond capacity submissions queue (backpressure),
/// beyond queue capacity they fail with the typed error — and submission
/// never blocks or aborts the fleet.
#[test]
fn admission_queues_then_rejects_with_typed_error() {
    let mut engine = FleetEngine::with_synthetic_model(
        FleetConfig {
            shards: 2,
            workers: 1,
            shard_capacity: 4,
            pending_capacity: 2,
            ..FleetConfig::default()
        },
        SEED,
    );
    let mut admitted = 0;
    let mut queued = 0;
    let mut rejected = Vec::new();
    for id in 0..24u64 {
        match engine.submit(SessionSpec::new(id, id + 1)) {
            Ok(Admission::Admitted { .. }) => admitted += 1,
            Ok(Admission::Queued { depth, .. }) => {
                assert!((1..=2).contains(&depth));
                queued += 1;
            }
            Err(AdmissionError::ShardSaturated {
                shard,
                resident,
                queued,
            }) => {
                assert!(shard < 2);
                assert_eq!(resident, 4);
                assert_eq!(queued, 2);
                rejected.push(id);
            }
        }
    }
    assert_eq!(admitted, 8, "2 shards x capacity 4");
    assert_eq!(queued, 4, "2 shards x pending 2");
    assert_eq!(rejected.len(), 12);
    // The typed error formats into an operator-readable message.
    let err = engine
        .submit(SessionSpec::new(0, 1))
        .expect_err("still saturated");
    assert!(err.to_string().contains("saturated"));
    // The fleet still ticks fine while saturated.
    let stats = engine.tick();
    assert_eq!(stats.session_ticks, 8);
}

/// Queued sessions drain into capacity freed by retirement, in FIFO
/// order, and the drain shows up in the stats.
#[test]
fn queued_sessions_admitted_after_retirement() {
    let mut engine = FleetEngine::with_synthetic_model(
        FleetConfig {
            shards: 1,
            workers: 1,
            shard_capacity: 2,
            pending_capacity: 4,
            ..FleetConfig::default()
        },
        SEED,
    );
    // Two resident sessions with a 5-tick budget, two queued behind them.
    for id in 0..2u64 {
        let s = SessionSpec::new(id, id + 1)
            .with_budget(MissionBudget::default().with_step_budget(5));
        assert!(matches!(engine.submit(s), Ok(Admission::Admitted { .. })));
    }
    for id in 2..4u64 {
        assert!(matches!(
            engine.submit(SessionSpec::new(id, id + 1)),
            Ok(Admission::Queued { .. })
        ));
    }
    engine.run_ticks(10);
    // Budgeted pair quarantined with typed errors; queued pair admitted.
    assert_eq!(engine.stats().retired, 2);
    assert_eq!(engine.stats().admitted_from_queue, 2);
    assert_eq!(engine.resident_sessions(), 2);
    assert_eq!(engine.pending_sessions(), 0);
    let quarantined = engine.quarantined();
    assert_eq!(quarantined.len(), 2);
    assert_eq!(quarantined[0].id, 0);
    assert!(matches!(
        quarantined[0].error,
        pidpiper_missions::MissionError::StepBudgetExhausted { budget: 5, .. }
    ));
}

/// The cost-budget knob (`shard_cost_budget`) caps admission below the
/// resident capacity when the per-tick cost budget is the binding limit.
#[test]
fn cost_budget_caps_admission() {
    let mut engine = FleetEngine::with_synthetic_model(
        FleetConfig {
            shards: 1,
            workers: 1,
            shard_capacity: 100,
            pending_capacity: 0,
            // session_cost = 1 + ceil(19/5) = 5 units; budget 12 -> 2 fit.
            shard_cost_budget: 12,
            ..FleetConfig::default()
        },
        SEED,
    );
    assert_eq!(engine.session_cost(), 5);
    assert!(matches!(
        engine.submit(SessionSpec::new(0, 1)),
        Ok(Admission::Admitted { .. })
    ));
    assert!(matches!(
        engine.submit(SessionSpec::new(1, 2)),
        Ok(Admission::Admitted { .. })
    ));
    assert!(engine.submit(SessionSpec::new(2, 3)).is_err());
    assert_eq!(engine.resident_sessions(), 2);
}
