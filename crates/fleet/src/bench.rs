//! The fleet throughput bench behind `pidpiper-fleet` and
//! `BENCH_fleet.json`.
//!
//! Three stages, mirroring the PR-5 perf bench's refuse-to-lie shape:
//!
//! 1. **Determinism gate** — a reduced fleet is run four times (1
//!    worker, several workers, different shard count, and the opposite
//!    batching mode) and every per-session fingerprint is compared
//!    bit-for-bit. The bench records the verdict; the `pidpiper-fleet`
//!    binary exits nonzero on a mismatch and CI's `fleet-smoke` job
//!    asserts the flags.
//! 2. **Admission exercise** — the full fleet is submitted with a
//!    deliberate overflow beyond capacity, so the report always carries
//!    real queued/rejected/quarantined counts, and a slice of sessions
//!    gets tight PR-4 budgets so retirement (and queue drainage) happens
//!    mid-run.
//! 3. **Timed runs** — every fleet tick is wall-clock timed, twice: a
//!    1-worker row (the configuration the determinism gate anchors on)
//!    and a multi-worker row (`workers` from `PIDPIPER_JOBS`), so the
//!    batched-inference speedup is measured where it matters. The report
//!    carries sustained session-ticks/sec, mean and p99 fleet-tick
//!    latency per row, and the measured marginal bytes/session.
//!
//! All knobs come from the environment (see `OPERATIONS.md`):
//! `PIDPIPER_FLEET_SESSIONS`, `PIDPIPER_FLEET_TICKS`,
//! `PIDPIPER_FLEET_SHARDS`, `PIDPIPER_FLEET_SHARD_CAPACITY`,
//! `PIDPIPER_FLEET_PENDING`, `PIDPIPER_FLEET_COST_BUDGET`,
//! `PIDPIPER_FLEET_STRATEGY` (the recovery strategy every session runs),
//! `PIDPIPER_FLEET_BATCH` (batched vs per-session inference), and
//! `PIDPIPER_JOBS` for the worker pool.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use pidpiper_faults::FaultSchedule;
use pidpiper_math::float::sort_floats;
use pidpiper_missions::{configured_jobs, MissionBudget, StrategyKind};

use crate::engine::{FleetBatch, FleetConfig, FleetEngine};
use crate::session::SessionSpec;

/// Bench configuration, read from the environment by the binary.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBenchConfig {
    /// Target concurrent sessions (`PIDPIPER_FLEET_SESSIONS`).
    pub sessions: usize,
    /// Timed fleet ticks (`PIDPIPER_FLEET_TICKS`).
    pub ticks: usize,
    /// Untimed warm-up fleet ticks.
    pub warmup: usize,
    /// Shard count (`PIDPIPER_FLEET_SHARDS`).
    pub shards: usize,
    /// Worker threads (`PIDPIPER_JOBS` via [`configured_jobs`]).
    pub workers: usize,
    /// Per-shard resident capacity (`PIDPIPER_FLEET_SHARD_CAPACITY`;
    /// default sized so the target session count just fits).
    pub shard_capacity: usize,
    /// Per-shard pending-queue capacity (`PIDPIPER_FLEET_PENDING`).
    pub pending_capacity: usize,
    /// Per-shard tick cost budget (`PIDPIPER_FLEET_COST_BUDGET`;
    /// `None` = capacity-limited only).
    pub cost_budget: Option<u64>,
    /// Model weight seed (scheduling does not depend on the values).
    pub seed: u64,
    /// Recovery strategy every session runs (`PIDPIPER_FLEET_STRATEGY`:
    /// `algorithm1` | `spec-compliance` | `diagnosis-guided`, plus the
    /// `spec` / `diagnosis` short aliases; unknown values fall back to
    /// the Algorithm 1 default).
    pub strategy: StrategyKind,
    /// Inference batching mode (`PIDPIPER_FLEET_BATCH`: `batched` |
    /// `per-session`; unknown values fall back to the batched default).
    pub batch: FleetBatch,
}

impl Default for FleetBenchConfig {
    fn default() -> Self {
        let sessions = 100_000;
        let shards = 64;
        FleetBenchConfig {
            sessions,
            ticks: 25,
            warmup: 2,
            shards,
            workers: configured_jobs(),
            shard_capacity: sessions.div_ceil(shards),
            pending_capacity: 4,
            cost_budget: None,
            seed: 2021,
            strategy: StrategyKind::Algorithm1,
            batch: FleetBatch::default(),
        }
    }
}

fn parse_usize(raw: Option<String>, default: usize) -> usize {
    raw.and_then(|v| v.parse::<usize>().ok())
        .map_or(default, |n| n.max(1))
}

impl FleetBenchConfig {
    /// Reads every `PIDPIPER_FLEET_*` knob (and `PIDPIPER_JOBS`) from the
    /// environment, falling back to the defaults above.
    pub fn from_env() -> Self {
        let mut cfg = FleetBenchConfig::default();
        cfg.sessions = parse_usize(std::env::var("PIDPIPER_FLEET_SESSIONS").ok(), cfg.sessions);
        cfg.ticks = parse_usize(std::env::var("PIDPIPER_FLEET_TICKS").ok(), cfg.ticks);
        cfg.shards = parse_usize(std::env::var("PIDPIPER_FLEET_SHARDS").ok(), cfg.shards);
        cfg.shard_capacity = parse_usize(
            std::env::var("PIDPIPER_FLEET_SHARD_CAPACITY").ok(),
            cfg.sessions.div_ceil(cfg.shards),
        );
        cfg.pending_capacity = parse_usize(
            std::env::var("PIDPIPER_FLEET_PENDING").ok(),
            cfg.pending_capacity,
        );
        cfg.cost_budget = std::env::var("PIDPIPER_FLEET_COST_BUDGET")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        cfg.strategy = std::env::var("PIDPIPER_FLEET_STRATEGY")
            .ok()
            .and_then(|v| StrategyKind::parse(&v))
            .unwrap_or(cfg.strategy);
        cfg.batch = std::env::var("PIDPIPER_FLEET_BATCH")
            .ok()
            .and_then(|v| FleetBatch::parse(&v))
            .unwrap_or(cfg.batch);
        cfg.workers = configured_jobs();
        cfg
    }

    fn fleet_config(&self, workers: usize) -> FleetConfig {
        let mut config = FleetConfig {
            shards: self.shards,
            workers,
            shard_capacity: self.shard_capacity,
            pending_capacity: self.pending_capacity,
            shard_cost_budget: self.cost_budget.unwrap_or(u64::MAX),
            batch: self.batch,
            ..FleetConfig::default()
        };
        config.session.strategy = self.strategy;
        config
    }
}

/// The determinism-gate verdict carried in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterminismGate {
    /// Sessions in the reduced gate fleet.
    pub gate_sessions: usize,
    /// Fleet ticks the gate ran.
    pub gate_ticks: usize,
    /// Whether 1-worker and multi-worker fleets produced bit-identical
    /// per-session fingerprints.
    pub worker_invariant: bool,
    /// Whether a different shard count also left every per-session
    /// fingerprint unchanged.
    pub shard_invariant: bool,
    /// Whether switching between batched and per-session inference left
    /// every per-session fingerprint unchanged (the PR-10 `to_bits`
    /// equality contract, enforced at fleet scale).
    pub batch_invariant: bool,
}

impl DeterminismGate {
    /// All three invariances hold.
    pub fn passed(&self) -> bool {
        self.worker_invariant && self.shard_invariant && self.batch_invariant
    }
}

/// One wall-clock-timed fleet row at a fixed worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRun {
    /// Worker threads this row ran with.
    pub workers: usize,
    /// Sustained session-ticks per second over the timed run.
    pub session_ticks_per_sec: f64,
    /// Mean fleet-tick latency (ms).
    pub tick_ms_mean: f64,
    /// 99th-percentile fleet-tick latency (ms).
    pub tick_ms_p99: f64,
}

/// Measured results of one fleet bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBenchReport {
    /// The configuration measured.
    pub cfg: FleetBenchConfig,
    /// Sessions resident when the timed run started.
    pub resident_sessions: usize,
    /// Sustained session-ticks per second over the multi-worker row.
    pub session_ticks_per_sec: f64,
    /// Mean fleet-tick latency over the multi-worker row (ms).
    pub tick_ms_mean: f64,
    /// 99th-percentile fleet-tick latency over the multi-worker row (ms).
    pub tick_ms_p99: f64,
    /// Every timed row: a 1-worker determinism-anchor row, then the
    /// multi-worker throughput row (`workers` from `PIDPIPER_JOBS`).
    /// When the configured worker count is 1 the rows coincide and only
    /// one is emitted.
    pub runs: Vec<TimedRun>,
    /// Measured marginal bytes per resident session.
    pub bytes_per_session: usize,
    /// Deterministic cost units of one session tick.
    pub session_cost: u64,
    /// Admission counters: submitted / admitted / queued / rejected /
    /// admitted-from-queue / quarantined.
    pub admission: [u64; 6],
    /// Health counters at the end of the run: in recovery, degraded,
    /// monitor-tripped session ticks during the last fleet tick.
    pub health: [u64; 3],
    /// The determinism-gate verdict.
    pub gate: DeterminismGate,
}

/// Builds the deterministic bench session mix: every 16th session runs
/// an intermittent fault schedule (phase-shifted per session), every
/// 1024th carries a tight PR-4 step budget so it quarantines mid-run and
/// frees capacity for queued sessions.
fn bench_spec(id: u64, run_ticks: usize, dt: f64) -> SessionSpec {
    let mut spec = SessionSpec::new(id, id.wrapping_mul(0x9E37_79B9) ^ 0xF1_EE7_u64);
    if id.is_multiple_of(16) {
        // Activation must land inside even a short (25-tick, 0.25 s) run:
        // start early, phase-shift by at most 12 ticks.
        let template = FaultSchedule::Intermittent {
            start: 0.03,
            on: 1.0,
            off: 4.0,
        };
        spec = spec.with_fault(template.shifted(0.01 * (id % 13) as f64));
    }
    if id.is_multiple_of(1024) {
        let budget = ((run_ticks as u64 * 2) / 3).max(1);
        // Alternate the two typed budget errors so both retirement paths
        // (StepBudgetExhausted, DeadlineExceeded) run at fleet scale.
        spec = if id.is_multiple_of(2048) {
            spec.with_budget(MissionBudget::default().with_deadline(budget as f64 * dt))
        } else {
            spec.with_budget(MissionBudget::default().with_step_budget(budget))
        };
    }
    spec
}

fn fingerprints_match(a: &FleetEngine, b: &FleetEngine) -> bool {
    a.session_fingerprints() == b.session_fingerprints()
}

/// Runs the reduced determinism gate: the same session mix under
/// (1 worker), (several workers), (different shard count) and (the
/// opposite batching mode) must yield bit-identical per-session
/// fingerprints, including retirement timing.
pub fn run_gate(cfg: &FleetBenchConfig) -> DeterminismGate {
    let gate_sessions = cfg.sessions.min(512);
    let gate_ticks = cfg.ticks.clamp(5, 30);
    let dt = 0.01;
    let build = |shards: usize, workers: usize, batch: FleetBatch| {
        let mut engine = FleetEngine::with_synthetic_model(
            FleetConfig {
                shards,
                workers,
                shard_capacity: gate_sessions,
                pending_capacity: gate_sessions,
                shard_cost_budget: u64::MAX,
                batch,
                ..FleetConfig::default()
            },
            cfg.seed,
        );
        for id in 0..gate_sessions as u64 {
            // Capacity covers every submission; drop the infallible result.
            let _ = engine.submit(bench_spec(id, gate_ticks, dt));
        }
        engine.run_ticks(gate_ticks);
        engine
    };
    // The batch leg always runs the *opposite* mode of the timed fleet,
    // so batched == per-session is asserted whichever mode the knob picks.
    let other = match cfg.batch {
        FleetBatch::Batched => FleetBatch::PerSession,
        FleetBatch::PerSession => FleetBatch::Batched,
    };
    let serial = build(8, 1, cfg.batch);
    let parallel = build(8, cfg.workers.clamp(2, 8), cfg.batch);
    let resharded = build(5, 2, cfg.batch);
    let rebatched = build(8, 1, other);
    DeterminismGate {
        gate_sessions,
        gate_ticks,
        worker_invariant: fingerprints_match(&serial, &parallel),
        shard_invariant: fingerprints_match(&serial, &resharded),
        batch_invariant: fingerprints_match(&serial, &rebatched),
    }
}

/// Builds, fills (with deliberate overflow), warms up, and wall-clock
/// times one fleet at the given worker count. Returns the timed row plus
/// the finished engine, the last tick's health stats, and the resident
/// session count at the start of the timed loop.
fn timed_run(
    cfg: &FleetBenchConfig,
    workers: usize,
) -> (TimedRun, FleetEngine, crate::shard::ShardTickStats, usize) {
    let mut engine = FleetEngine::with_synthetic_model(cfg.fleet_config(workers), cfg.seed);
    let dt = engine.config().session.dt;
    for id in 0..cfg.sessions as u64 {
        let _ = engine.submit(bench_spec(id, cfg.ticks, dt));
    }
    // Deliberate overflow: enough extra submissions to fill every pending
    // queue and force typed rejections, so backpressure is always
    // exercised and surfaced in the report.
    let overflow = (cfg.shards * cfg.pending_capacity + 128) as u64;
    for id in cfg.sessions as u64..cfg.sessions as u64 + overflow {
        let _ = engine.submit(bench_spec(id, cfg.ticks, dt));
    }
    let resident = engine.resident_sessions();

    engine.run_ticks(cfg.warmup);

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(cfg.ticks);
    let mut last_stats = Default::default();
    let t0 = Instant::now();
    for _ in 0..cfg.ticks {
        let t = Instant::now();
        last_stats = engine.tick();
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let total_s = t0.elapsed().as_secs_f64();

    // Session ticks executed inside the timed loop only (retirements make
    // this a slight overcount; the bench mix retires <0.1% of sessions).
    let timed_session_ticks: u64 = (resident as u64) * cfg.ticks as u64;
    sort_floats(&mut latencies_ms);
    let n = latencies_ms.len().max(1);
    let p99_idx = ((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1;
    let mean = latencies_ms.iter().sum::<f64>() / n as f64;

    let row = TimedRun {
        workers,
        session_ticks_per_sec: timed_session_ticks as f64 / total_s.max(f64::MIN_POSITIVE),
        tick_ms_mean: mean,
        tick_ms_p99: latencies_ms.get(p99_idx).copied().unwrap_or(mean),
    };
    (row, engine, last_stats, resident)
}

/// Runs the full bench: gate, admission exercise, warm-up, and the two
/// timed rows (1 worker, then `cfg.workers`).
pub fn run(cfg: &FleetBenchConfig) -> FleetBenchReport {
    let gate = run_gate(cfg);

    let mut runs = Vec::with_capacity(2);
    if cfg.workers > 1 {
        let (row, _, _, _) = timed_run(cfg, 1);
        runs.push(row);
    }
    let (row, engine, last_stats, resident) = timed_run(cfg, cfg.workers);
    runs.push(row.clone());

    let s = engine.stats();
    FleetBenchReport {
        cfg: cfg.clone(),
        resident_sessions: resident,
        session_ticks_per_sec: row.session_ticks_per_sec,
        tick_ms_mean: row.tick_ms_mean,
        tick_ms_p99: row.tick_ms_p99,
        runs,
        bytes_per_session: engine.bytes_per_session(),
        session_cost: engine.session_cost(),
        admission: [
            s.submitted,
            s.admitted,
            s.queued,
            s.rejected,
            s.admitted_from_queue,
            s.retired,
        ],
        health: [
            last_stats.in_recovery,
            last_stats.degraded,
            last_stats.tripped,
        ],
        gate,
    }
}

/// Renders the report as the `BENCH_fleet.json` document.
pub fn to_json(r: &FleetBenchReport) -> String {
    let cost_budget = match r.cfg.cost_budget {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    let runs = r
        .runs
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"workers\": {workers},\n",
                    "      \"session_ticks_per_sec\": {tps:.1},\n",
                    "      \"fleet_tick_ms_mean\": {mean:.3},\n",
                    "      \"fleet_tick_ms_p99\": {p99:.3}\n",
                    "    }}"
                ),
                workers = row.workers,
                tps = row.session_ticks_per_sec,
                mean = row.tick_ms_mean,
                p99 = row.tick_ms_p99,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_engine\",\n",
            "  \"config\": {{\n",
            "    \"sessions\": {sessions},\n",
            "    \"ticks\": {ticks},\n",
            "    \"shards\": {shards},\n",
            "    \"workers\": {workers},\n",
            "    \"shard_capacity\": {cap},\n",
            "    \"pending_capacity\": {pend},\n",
            "    \"cost_budget\": {cost_budget},\n",
            "    \"seed\": {seed},\n",
            "    \"strategy\": \"{strategy}\",\n",
            "    \"batch\": \"{batch}\"\n",
            "  }},\n",
            "  \"resident_sessions\": {resident},\n",
            "  \"session_ticks_per_sec\": {tps:.1},\n",
            "  \"fleet_tick_ms_mean\": {mean:.3},\n",
            "  \"fleet_tick_ms_p99\": {p99:.3},\n",
            "  \"runs\": [\n{runs}\n  ],\n",
            "  \"bytes_per_session\": {bps},\n",
            "  \"session_cost_units\": {cost},\n",
            "  \"admission\": {{\n",
            "    \"submitted\": {submitted},\n",
            "    \"admitted\": {admitted},\n",
            "    \"queued\": {queued},\n",
            "    \"rejected\": {rejected},\n",
            "    \"admitted_from_queue\": {from_queue},\n",
            "    \"quarantined\": {quarantined}\n",
            "  }},\n",
            "  \"health\": {{\n",
            "    \"in_recovery\": {in_recovery},\n",
            "    \"degraded\": {degraded},\n",
            "    \"tripped_session_ticks\": {tripped}\n",
            "  }},\n",
            "  \"determinism\": {{\n",
            "    \"gate_sessions\": {gate_sessions},\n",
            "    \"gate_ticks\": {gate_ticks},\n",
            "    \"worker_invariant\": {worker_invariant},\n",
            "    \"shard_invariant\": {shard_invariant},\n",
            "    \"batch_invariant\": {batch_invariant}\n",
            "  }}\n",
            "}}\n"
        ),
        sessions = r.cfg.sessions,
        ticks = r.cfg.ticks,
        shards = r.cfg.shards,
        workers = r.cfg.workers,
        cap = r.cfg.shard_capacity,
        pend = r.cfg.pending_capacity,
        cost_budget = cost_budget,
        seed = r.cfg.seed,
        strategy = r.cfg.strategy.name(),
        batch = r.cfg.batch.as_str(),
        resident = r.resident_sessions,
        runs = runs,
        tps = r.session_ticks_per_sec,
        mean = r.tick_ms_mean,
        p99 = r.tick_ms_p99,
        bps = r.bytes_per_session,
        cost = r.session_cost,
        submitted = r.admission[0],
        admitted = r.admission[1],
        queued = r.admission[2],
        rejected = r.admission[3],
        from_queue = r.admission[4],
        quarantined = r.admission[5],
        in_recovery = r.health[0],
        degraded = r.health[1],
        tripped = r.health[2],
        gate_sessions = r.gate.gate_sessions,
        gate_ticks = r.gate.gate_ticks,
        worker_invariant = r.gate.worker_invariant,
        shard_invariant = r.gate.shard_invariant,
        batch_invariant = r.gate.batch_invariant,
    )
}

/// Workspace root, resolved from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// Writes `BENCH_fleet.json` to the workspace root and mirrors it into
/// `target/experiments/`.
pub fn write_report(r: &FleetBenchReport) {
    let body = to_json(r);
    let root = workspace_root();
    let exp_dir = root.join("target").join("experiments");
    if let Err(e) = fs::create_dir_all(&exp_dir) {
        eprintln!("warning: failed to create {}: {e}", exp_dir.display());
    }
    for path in [root.join("BENCH_fleet.json"), exp_dir.join("BENCH_fleet.json")] {
        if let Err(e) = fs::write(&path, &body) {
            eprintln!("warning: failed to write {}: {e}", path.display());
        }
    }
    for row in &r.runs {
        println!(
            "exp_fleet[{} worker{}]: {:.0} session-ticks/s, tick p99 {:.2} ms (mean {:.2} ms)",
            row.workers,
            if row.workers == 1 { "" } else { "s" },
            row.session_ticks_per_sec,
            row.tick_ms_p99,
            row.tick_ms_mean,
        );
    }
    println!(
        "exp_fleet: {} sessions ({} inference), {} bytes/session; admission {:?}; \
         determinism gate: {}",
        r.resident_sessions,
        r.cfg.batch.as_str(),
        r.bytes_per_session,
        r.admission,
        if r.gate.passed() { "PASS" } else { "FAIL" },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetBenchConfig {
        FleetBenchConfig {
            sessions: 96,
            ticks: 8,
            warmup: 1,
            shards: 4,
            workers: 2,
            shard_capacity: 24,
            pending_capacity: 2,
            cost_budget: None,
            seed: 7,
            strategy: StrategyKind::Algorithm1,
            batch: FleetBatch::Batched,
        }
    }

    #[test]
    fn gate_passes_on_reduced_fleet() {
        let gate = run_gate(&small_cfg());
        assert!(gate.worker_invariant, "worker count changed results");
        assert!(gate.shard_invariant, "shard count changed results");
        assert!(gate.batch_invariant, "batching mode changed results");
        assert!(gate.passed());
    }

    #[test]
    fn report_shape_and_admission_accounting() {
        let cfg = small_cfg();
        let r = run(&cfg);
        assert!(r.session_ticks_per_sec > 0.0);
        assert!(r.tick_ms_p99 >= 0.0);
        assert!(r.tick_ms_mean > 0.0);
        assert!(r.bytes_per_session >= 4416, "ring + state floor");
        // submitted == admitted + queued + rejected.
        assert_eq!(r.admission[0], r.admission[1] + r.admission[2] + r.admission[3]);
        // The deliberate overflow forces queueing AND typed rejection.
        assert!(r.admission[2] > 0, "no backpressure exercised");
        assert!(r.admission[3] > 0, "no typed rejection exercised");
        // Two timed rows: the 1-worker anchor and the configured workers.
        assert_eq!(r.runs.len(), 2);
        assert_eq!(r.runs[0].workers, 1);
        assert_eq!(r.runs[1].workers, cfg.workers);
        assert!(r.runs.iter().all(|row| row.session_ticks_per_sec > 0.0));
        assert_eq!(r.session_ticks_per_sec, r.runs[1].session_ticks_per_sec);
        let json = to_json(&r);
        assert!(json.contains("\"bench\": \"fleet_engine\""));
        assert!(json.contains("\"session_ticks_per_sec\""));
        assert!(json.contains("\"fleet_tick_ms_p99\""));
        assert!(json.contains("\"bytes_per_session\""));
        assert!(json.contains("\"batch\": \"batched\""));
        assert!(json.contains("\"runs\": ["));
        assert!(json.contains("\"workers\": 1"));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"worker_invariant\": true"));
        assert!(json.contains("\"shard_invariant\": true"));
        assert!(json.contains("\"batch_invariant\": true"));
        assert!(json.contains("\"cost_budget\": null"));
    }

    #[test]
    fn single_worker_config_emits_one_row() {
        let mut cfg = small_cfg();
        cfg.workers = 1;
        cfg.sessions = 48;
        cfg.ticks = 6;
        let r = run(&cfg);
        assert_eq!(r.runs.len(), 1);
        assert_eq!(r.runs[0].workers, 1);
    }

    #[test]
    fn env_parsing_clamps_and_defaults() {
        assert_eq!(parse_usize(None, 7), 7);
        assert_eq!(parse_usize(Some("12".to_string()), 7), 12);
        assert_eq!(parse_usize(Some("0".to_string()), 7), 1);
        assert_eq!(parse_usize(Some("nope".to_string()), 7), 7);
    }
}
