//! `pidpiper-fleet`: the fleet-scale session engine benchmark binary.
//!
//! Reads its configuration from `PIDPIPER_FLEET_*` / `PIDPIPER_JOBS`
//! environment knobs (see `OPERATIONS.md`), runs the determinism gate and
//! the timed fleet run, writes `BENCH_fleet.json` to the workspace root,
//! and exits non-zero if any per-session result differed across worker or
//! shard counts — bit-identical fleet ticks are a contract, not a
//! nice-to-have (CI's fleet-smoke job runs this binary).

use pidpiper_fleet::bench;

fn main() {
    let cfg = bench::FleetBenchConfig::from_env();
    eprintln!(
        "pidpiper-fleet: {} sessions x {} ticks, {} shards, {} workers",
        cfg.sessions, cfg.ticks, cfg.shards, cfg.workers
    );
    let report = bench::run(&cfg);
    bench::write_report(&report);
    if !report.gate.passed() {
        eprintln!(
            "FAIL: fleet determinism gate (worker_invariant={}, shard_invariant={}, \
             batch_invariant={}); per-session fingerprints must be bit-identical for \
             any worker count and batching mode",
            report.gate.worker_invariant,
            report.gate.shard_invariant,
            report.gate.batch_invariant,
        );
        std::process::exit(1);
    }
    println!("fleet determinism gate: OK");
}
