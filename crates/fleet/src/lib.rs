//! Fleet-scale session engine for PID-Piper (Dash et al., DSN 2021).
//!
//! The paper's FFC runs *per vehicle*; this crate answers the deployment
//! question "how many vehicles can one ground station monitor?" by
//! multiplexing N independent vehicle sessions — each a compact struct
//! wrapping the PR-5 streaming inference state, a per-axis CUSUM monitor
//! bank, and the PR-3/4 supervisor state machine — over a fixed pool of
//! worker threads.
//!
//! # Architecture (see `ARCHITECTURE.md`, "Fleet engine")
//!
//! - [`session::VehicleSession`] — one vehicle: spec, decimation ring,
//!   prefix stream state, EMA baseline, CUSUMs, supervisor, fingerprint.
//! - Shard-level scheduling ([`shard`], crate-internal) — sessions pin to
//!   `id % shards` for life; each shard owns its sessions, its pending
//!   queue, its quarantine, and one heavy scratch buffer.
//! - [`engine::FleetEngine`] — the scheduler: one shared compiled
//!   [`StreamingRegressor`](pidpiper_ml::StreamingRegressor), S shards,
//!   steal-free contiguous shard ranges per worker.
//! - [`mod@bench`] — the `BENCH_fleet.json` producer behind the
//!   `pidpiper-fleet` binary.
//!
//! # Determinism
//!
//! Per-session results depend only on the session's spec and its own tick
//! count — never on shard placement, worker count, or wall-clock — so the
//! serial/parallel bit-equivalence guarantee of the PR-4 batch layer
//! extends to fleet ticks: every prediction bit, health transition, and
//! [`Fingerprint`](pidpiper_missions::Fingerprint)-based trace hash is
//! identical for any worker count. The `pidpiper-fleet` binary enforces
//! this with a gate run and exits non-zero on a mismatch.
//!
//! # Backpressure
//!
//! Admission control is explicit: a full shard queues new sessions
//! (FIFO) up to a bound, then rejects with the typed
//! [`AdmissionError`] — submission never blocks
//! and never silently drops. `OPERATIONS.md` is the operator guide.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod engine;
pub mod session;
pub mod shard;

pub use engine::{FleetBatch, FleetConfig, FleetEngine, FleetStats};
pub use session::{SessionParams, SessionSpec, SessionTick, VehicleSession};
pub use shard::{Admission, AdmissionError, RetiredSession, ShardTickStats};
