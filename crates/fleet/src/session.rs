//! Compact per-vehicle sessions: the unit of work the fleet engine
//! schedules.
//!
//! A [`VehicleSession`] is *not* a [`MissionRunner`] — the closed-loop
//! simulator flies one vehicle with full physics and costs far too much
//! to keep 100k of them resident. A session is the deployed monitoring
//! core only: the PR-5 streaming FFC state (normalized history ring plus
//! a checkpointed `StreamState`), four per-axis CUSUM accumulators, and
//! the PR-4 graceful-degradation supervisor, all folded over a
//! deterministic synthetic flight. Everything heavy — engine weights,
//! inference scratch, live `StreamState` — is shared per shard, so the
//! marginal cost of one more session is a few kilobytes (see
//! [`VehicleSession::resident_bytes`]).
//!
//! [`MissionRunner`]: pidpiper_missions::MissionRunner

use pidpiper_control::{ActuatorSignal, TargetState};
use pidpiper_core::features::{assemble_into, FeatureSet, SensorPrimitives};
use pidpiper_core::{SessionSupervisor, SignalEnvelope};
use pidpiper_faults::FaultSchedule;
use pidpiper_math::{Cusum, Vec3};
use pidpiper_missions::{Fingerprint, FlightPhase, HealthState, MissionBudget, MissionError,
    MissionSpec, StrategyKind};
use pidpiper_ml::{InferenceScratch, StreamState, StreamingRegressor};

/// What [`VehicleSession::begin_tick`] established before inference: the
/// simulated time, whether the fault schedule is active, and whether the
/// feature row normalized cleanly (it always does for engine-shaped
/// buffers; on the impossible mismatch the session holds its previous
/// prediction, exactly like the monolithic tick path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TickPrologue {
    t: f64,
    fault_active: bool,
    pub(crate) normed_ok: bool,
}

/// Everything needed to admit one session to the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Stable session identity; also selects the shard
    /// (`id % shard_count`) and salts the synthetic flight.
    pub id: u64,
    /// Seed for the session's deterministic synthetic flight phases.
    pub seed: u64,
    /// The session's navigation target (trusted input `u(t)`).
    pub target: TargetState,
    /// Optional per-session fault schedule (fleet-scale injection: the
    /// engine phase-shifts one template per session via
    /// [`FaultSchedule::shifted`]).
    pub fault: Option<FaultSchedule>,
    /// PR-4 watchdog budget, reused per session: exceeding it retires the
    /// session into quarantine with a typed [`MissionError`].
    pub budget: MissionBudget,
}

impl SessionSpec {
    /// A spec with defaults: hover target, no fault, unlimited budget.
    pub fn new(id: u64, seed: u64) -> Self {
        SessionSpec {
            id,
            seed,
            target: TargetState::hover_at(Vec3::new(30.0, 0.0, 5.0), 0.0),
            fault: None,
            budget: MissionBudget::unlimited(),
        }
    }

    /// Derives a fleet session from a PR-4 [`MissionSpec`]: the seed from
    /// the runner config's sensor seed salted with `id`, the target from
    /// the plan's destination and the first scheduled fault (if any)
    /// phase-shifted by the session id so a fleet built from one template
    /// does not trip every monitor on the same tick.
    pub fn from_mission(id: u64, mission: &MissionSpec) -> Self {
        let fault = mission
            .config
            .faults
            .first()
            .map(|f| f.schedule.shifted(0.1 * (id % 997) as f64));
        SessionSpec {
            id,
            seed: mission.config.sensor_seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            target: TargetState::hover_at(mission.plan.destination(), 0.0),
            fault,
            budget: MissionBudget::unlimited(),
        }
    }

    /// Sets the fault schedule (builder style).
    pub fn with_fault(mut self, fault: FaultSchedule) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Sets the PR-4 budget (builder style).
    pub fn with_budget(mut self, budget: MissionBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Per-tick knobs shared by every session (owned by the engine config).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionParams {
    /// Control period (simulated seconds per tick).
    pub dt: f64,
    /// Feature-stream decimation: one history-ring push every `decimate`
    /// ticks (the deployed pipeline default is 5).
    pub decimate: usize,
    /// CUSUM drift `b` per axis.
    pub cusum_drift: f64,
    /// CUSUM saturation cap (bounds recovery lag, PR-3).
    pub cusum_cap: f64,
    /// Detection threshold `tau`: the monitor trips when any axis CUSUM
    /// exceeds it.
    pub tau: f64,
    /// EMA smoothing factor for the per-axis prediction baseline the
    /// residual is measured against.
    pub ema_alpha: f64,
    /// Consecutive bad predictions before the FFC latches offline.
    pub offline_after: usize,
    /// Recovery watchdog budget (consecutive recovery ticks).
    pub max_recovery_steps: usize,
    /// Bias (m) injected into the estimated-position features while the
    /// session's fault schedule is active — a GPS-spoof-shaped
    /// perturbation.
    pub fault_bias: f64,
    /// Recovery strategy shaping the trip/release decision the supervisor
    /// observes (the fleet-scale analogue of the core crate's
    /// `RecoveryStrategy` selection — see the `PIDPIPER_FLEET_STRATEGY`
    /// bench knob). The default, Algorithm 1, keeps session fingerprints
    /// bit-identical to pre-strategy fleets.
    pub strategy: StrategyKind,
}

impl Default for SessionParams {
    fn default() -> Self {
        SessionParams {
            dt: 0.01,
            decimate: 5,
            cusum_drift: 0.008,
            cusum_cap: 50.0,
            tau: 0.08,
            ema_alpha: 0.05,
            offline_after: 25,
            max_recovery_steps: 400,
            fault_bias: 35.0,
            strategy: StrategyKind::Algorithm1,
        }
    }
}

/// Heavy per-shard working set shared by all of a shard's sessions: the
/// live `StreamState` the prefix checkpoint is copied into each tick, the
/// inference scratch, and the feature buffers. Sessions touch it only
/// through [`VehicleSession::tick`], one at a time, so sharing is safe
/// and the per-session footprint stays small.
#[derive(Debug, Clone)]
pub struct ShardScratch {
    pub(crate) live: StreamState,
    pub(crate) scratch: InferenceScratch,
    pub(crate) feat: Vec<f64>,
    pub(crate) normed: Vec<f64>,
    pub(crate) out: Vec<f64>,
}

impl ShardScratch {
    /// Builds a scratch sized for `engine`.
    pub fn for_engine(engine: &StreamingRegressor) -> Self {
        let c = engine.config();
        ShardScratch {
            live: engine.state(),
            scratch: engine.scratch(),
            feat: Vec::with_capacity(c.input_dim),
            normed: vec![0.0; c.input_dim],
            out: vec![0.0; c.output_dim],
        }
    }
}

/// What one session tick produced (consumed by shard statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTick {
    /// Health state after this tick.
    pub health: HealthState,
    /// Whether the CUSUM monitor was tripped this tick.
    pub tripped: bool,
    /// Whether the session's fault schedule was active this tick.
    pub fault_active: bool,
}

/// One resident vehicle session: the compact struct the fleet engine
/// multiplexes.
///
/// Persistent state per session (everything else is shard-shared):
///
/// - a normalized feature ring of `window - 1` rows plus the checkpointed
///   prefix [`StreamState`] — the PR-5 streaming layout;
/// - four per-axis [`Cusum`] accumulators and their EMA baselines;
/// - the PR-4 [`SessionSupervisor`] (health monitor, recovery watchdog,
///   latched [`HealthState`]);
/// - a running [`Fingerprint`] over the session's behavioral channels —
///   the same FNV-1a mixer as `Trace::fingerprint`, which is what the
///   fleet determinism gate compares across worker counts.
#[derive(Debug, Clone)]
pub struct VehicleSession {
    spec: SessionSpec,
    /// Seed-derived phase offsets of the synthetic flight.
    phase: [f64; 3],
    /// Circular normalized history: `window - 1` rows of `input_dim`.
    ring: Vec<f64>,
    ring_rows: usize,
    ring_head: usize,
    /// `StreamState` after replaying the ring oldest-to-newest.
    prefix: StreamState,
    ticks_since_push: usize,
    ema: [f64; 4],
    ema_primed: bool,
    cusum: [Cusum; 4],
    supervisor: SessionSupervisor,
    fingerprint: Fingerprint,
    ticks: u64,
    spent: u64,
    last_prediction: [f64; 4],
    /// The axis the diagnosis-guided strategy currently blames (its CUSUM
    /// is excluded from the trip decision while recovering). Always `None`
    /// under the other strategies.
    blamed_axis: Option<usize>,
}

impl VehicleSession {
    /// Builds a session for `engine` from its spec.
    pub fn new(spec: SessionSpec, engine: &StreamingRegressor, params: &SessionParams) -> Self {
        let c = engine.config();
        let s = spec.seed;
        // Three phase offsets in [0, 2π), derived from the seed without RNG.
        let ph = |k: u64| ((s.wrapping_mul(k) % 6283) as f64) * 1e-3;
        VehicleSession {
            phase: [ph(0x9E37), ph(0x85EB), ph(0xC2B2)],
            ring: Vec::with_capacity((c.window - 1) * c.input_dim),
            ring_rows: 0,
            ring_head: 0,
            prefix: engine.state(),
            ticks_since_push: 0,
            ema: [0.0; 4],
            ema_primed: false,
            cusum: [
                Cusum::new(params.cusum_drift),
                Cusum::new(params.cusum_drift),
                Cusum::new(params.cusum_drift),
                Cusum::new(params.cusum_drift),
            ],
            supervisor: SessionSupervisor::new(
                SignalEnvelope::default(),
                params.offline_after,
                params.max_recovery_steps,
            ),
            fingerprint: Fingerprint::new(),
            ticks: 0,
            spent: 0,
            last_prediction: [0.0; 4],
            blamed_axis: None,
            spec,
        }
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Stable session identity.
    pub fn id(&self) -> u64 {
        self.spec.id
    }

    /// Ticks flown so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The running behavioral fingerprint (FNV-1a over every tick's
    /// prediction bits, monitor statistic, flags and health state).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint.value()
    }

    /// Current health state.
    pub fn health(&self) -> HealthState {
        self.supervisor.health()
    }

    /// Total recovery activations so far.
    pub fn recovery_activations(&self) -> usize {
        self.supervisor.recovery_activations()
    }

    /// Bytes this session keeps resident between ticks: the ring and
    /// prefix state (exactly [`StreamingRegressor::session_state_bytes`])
    /// plus the struct itself (spec, CUSUMs, supervisor, counters).
    pub fn resident_bytes(&self, engine: &StreamingRegressor) -> usize {
        engine.session_state_bytes() + std::mem::size_of::<Self>()
    }

    /// The deterministic synthetic flight: smoothly varying pose and
    /// rates (same shape as the perf bench's synthetic inputs, salted by
    /// the session's phase offsets), with the fault bias applied to the
    /// position channels while the schedule is active.
    fn synthesize(&self, t: f64, fault_active: bool, bias: f64) -> SensorPrimitives {
        let [p0, p1, p2] = self.phase;
        let mut est = pidpiper_sensors::EstimatedState {
            position: Vec3::new(
                2.0 * t + p0,
                (0.7 * t + p1).sin(),
                5.0 + 0.3 * (0.4 * t + p2).cos(),
            ),
            velocity: Vec3::new(2.0, 0.7 * (0.7 * t + p1).cos(), -0.12 * (0.4 * t + p2).sin()),
            attitude: Vec3::new(
                0.02 * (1.1 * t + p0).sin(),
                0.03 * (0.9 * t + p1).cos(),
                0.1 * t,
            ),
            body_rates: Vec3::new(
                0.022 * (1.1 * t + p0).cos(),
                -0.027 * (0.9 * t + p1).sin(),
                0.1,
            ),
            ..Default::default()
        };
        if fault_active {
            est.position.x += bias;
            est.position.y += bias;
        }
        SensorPrimitives::collect(&est, &pidpiper_sensors::SensorReadings::default())
    }

    /// Advances the session one tick.
    ///
    /// Pipeline per tick: synthesize features → normalize → streaming
    /// prediction (prefix checkpoint + live row, exactly the PR-5 layout)
    /// → per-axis residual vs the EMA baseline into the CUSUMs →
    /// supervisor observes (prediction, tripped) → fingerprint mixes the
    /// tick. Every `decimate` ticks the normalized row is pushed into the
    /// history ring and the prefix checkpoint is recomputed by replaying
    /// the ring.
    ///
    /// # Errors
    ///
    /// Returns a typed [`MissionError`] when the session exceeds its PR-4
    /// budget (deadline in simulated seconds, or step budget in ticks);
    /// the shard retires the session into quarantine.
    pub fn tick(
        &mut self,
        engine: &StreamingRegressor,
        params: &SessionParams,
        scratch: &mut ShardScratch,
    ) -> Result<SessionTick, MissionError> {
        let ShardScratch {
            live,
            scratch: inf,
            feat,
            normed,
            out,
        } = scratch;
        let pro = self.begin_tick(engine, params, feat, normed)?;

        // Streaming prediction: copy the prefix checkpoint, step the live
        // row, run the dense head. Dimension errors cannot occur (every
        // buffer is engine-shaped); on the impossible mismatch the session
        // holds its previous prediction rather than crashing the shard.
        let prediction = if pro.normed_ok {
            live.copy_from(&self.prefix);
            let stepped = engine.step_normed(normed, live, inf).is_ok()
                && engine.finish_into(live, inf, out).is_ok();
            if stepped {
                [out[0], out[1], out[2], out[3]]
            } else {
                self.last_prediction
            }
        } else {
            self.last_prediction
        };
        let (tick, deferred) = self.finish_tick(engine, params, prediction, &pro, normed, Some(inf));
        debug_assert!(!deferred, "inline scratch given, replay cannot defer");
        Ok(tick)
    }

    /// First phase of a tick: budget checks, synthetic flight, feature
    /// assembly and normalization into `normed`. Shared verbatim by the
    /// per-session path ([`VehicleSession::tick`]) and the shard's batched
    /// path, which runs inference over many sessions between this and
    /// [`VehicleSession::finish_tick`].
    ///
    /// # Errors
    ///
    /// The same typed [`MissionError`] budget violations as `tick`.
    pub(crate) fn begin_tick(
        &mut self,
        engine: &StreamingRegressor,
        params: &SessionParams,
        feat: &mut Vec<f64>,
        normed: &mut [f64],
    ) -> Result<TickPrologue, MissionError> {
        let t = self.ticks as f64 * params.dt;
        self.spent += 1;
        if let Some(deadline) = self.spec.budget.deadline {
            if t > deadline {
                return Err(MissionError::DeadlineExceeded {
                    deadline,
                    reached: t,
                });
            }
        }
        if let Some(budget) = self.spec.budget.step_budget {
            if self.spent > budget {
                return Err(MissionError::StepBudgetExhausted {
                    budget,
                    spent: self.spent,
                });
            }
        }

        let fault_active = self
            .spec
            .fault
            .as_ref()
            .is_some_and(|f| f.is_active(t));
        let prims = self.synthesize(t, fault_active, params.fault_bias);
        assemble_into(
            FeatureSet::FfcPruned,
            &prims,
            &self.spec.target,
            FlightPhase::Cruise { wp_index: 0 },
            &ActuatorSignal::default(),
            feat,
        );
        let normed_ok = engine.normalize_into(feat, normed).is_ok();
        Ok(TickPrologue {
            t,
            fault_active,
            normed_ok,
        })
    }

    /// Second phase of a tick: folds `prediction` through the monitor
    /// (EMA baseline → CUSUM → strategy trip decision), the supervisor and
    /// the fingerprint, and performs the decimated history-ring push.
    ///
    /// The prefix-checkpoint replay that follows a ring push runs inline
    /// when `replay_scratch` is `Some` (the per-session path); with `None`
    /// the caller batches it instead, and the returned flag is `true` when
    /// a replay is owed. Deferring is sound because the replay touches
    /// only the prefix checkpoint, which nothing after the ring push in
    /// this function reads — the deferred end state is bit-identical.
    pub(crate) fn finish_tick(
        &mut self,
        engine: &StreamingRegressor,
        params: &SessionParams,
        prediction: [f64; 4],
        pro: &TickPrologue,
        normed: &[f64],
        replay_scratch: Option<&mut InferenceScratch>,
    ) -> (SessionTick, bool) {
        let TickPrologue { t, fault_active, .. } = *pro;
        self.last_prediction = prediction;

        // Residual per axis against a slow EMA baseline: smooth nominal
        // flight keeps the increments under the CUSUM drift; a fault-biased
        // feature jump parks the prediction on a new plateau and the
        // residual stays elevated for ~1/alpha ticks, accumulating into
        // the CUSUMs.
        if !self.ema_primed {
            self.ema = prediction;
            self.ema_primed = true;
        }
        let mut axis = [0.0f64; 4];
        for (a, &pred) in prediction.iter().enumerate() {
            let residual = (pred - self.ema[a]).abs();
            self.ema[a] += params.ema_alpha * (pred - self.ema[a]);
            let s = self.cusum[a].update(residual);
            self.cusum[a].saturate(params.cusum_cap);
            axis[a] = s.min(params.cusum_cap);
        }
        let stat = axis.iter().fold(0.0f64, |m, &v| m.max(v));
        let recovering = self.supervisor.health() == HealthState::Recovery;
        let tripped = match params.strategy {
            // The paper's Algorithm 1: trip whenever any axis CUSUM is
            // over threshold.
            StrategyKind::Algorithm1 => stat > params.tau,
            // Spec-compliance flavor: release hysteresis — once in
            // recovery, stay tripped until the statistic has decayed well
            // below threshold (back on spec), not merely under it.
            StrategyKind::SpecCompliance => {
                if recovering {
                    stat > 0.5 * params.tau
                } else {
                    stat > params.tau
                }
            }
            // Diagnosis-guided flavor: while recovering, the blamed axis's
            // CUSUM is excused from the trip decision, so the session can
            // hand control back on the health of the remaining axes even
            // under a persistent single-axis fault.
            StrategyKind::DiagnosisGuided => {
                let effective = match (recovering, self.blamed_axis) {
                    (true, Some(b)) => axis
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != b)
                        .fold(0.0f64, |m, (_, &v)| m.max(v)),
                    _ => stat,
                };
                let t = effective > params.tau;
                if t && self.blamed_axis.is_none() {
                    // Blame the axis carrying the largest statistic
                    // (first-max-wins: strict comparison over a fixed
                    // order keeps it deterministic).
                    let mut best = 0usize;
                    for (i, &v) in axis.iter().enumerate().skip(1) {
                        if v > axis[best] {
                            best = i;
                        }
                    }
                    self.blamed_axis = Some(best);
                } else if !t && !recovering {
                    self.blamed_axis = None;
                }
                t
            }
        };

        let y = ActuatorSignal::from_array(prediction);
        let health = self.supervisor.observe(&y, tripped);

        // Decimated history-ring push + prefix replay (the PR-5 layout).
        self.ticks_since_push += 1;
        let mut replay_deferred = false;
        if self.ticks_since_push >= params.decimate {
            self.ticks_since_push = 0;
            self.push_ring(engine, normed);
            match replay_scratch {
                Some(inf) => self.replay_prefix(engine, inf),
                None => replay_deferred = true,
            }
        }

        // The per-session trace hook: same mixer as `Trace::fingerprint`.
        self.fingerprint.mix_f64(t);
        for v in prediction {
            self.fingerprint.mix_f64(v);
        }
        self.fingerprint.mix_f64(stat);
        self.fingerprint.mix_flag(tripped);
        self.fingerprint.mix_flag(fault_active);
        self.fingerprint.mix_health(health);

        self.ticks += 1;
        (
            SessionTick {
                health,
                tripped,
                fault_active,
            },
            replay_deferred,
        )
    }

    /// Appends one normalized row to the circular history ring.
    fn push_ring(&mut self, engine: &StreamingRegressor, row: &[f64]) {
        let dim = engine.config().input_dim;
        let cap_rows = engine.config().window - 1;
        if cap_rows == 0 {
            return;
        }
        if self.ring_rows < cap_rows {
            self.ring.extend_from_slice(row);
            self.ring_rows += 1;
        } else {
            let at = self.ring_head * dim;
            self.ring[at..at + dim].copy_from_slice(row);
            self.ring_head = (self.ring_head + 1) % cap_rows;
        }
    }

    /// Recomputes the prefix checkpoint by replaying the ring
    /// oldest-to-newest from the zero state. Also the per-session
    /// fallback for batched replay groups of one.
    pub(crate) fn replay_prefix(&mut self, engine: &StreamingRegressor, inf: &mut InferenceScratch) {
        let dim = engine.config().input_dim;
        self.prefix.reset();
        for i in 0..self.ring_rows {
            let idx = (self.ring_head + i) % self.ring_rows;
            let row = &self.ring[idx * dim..(idx + 1) * dim];
            // Engine-shaped row: cannot mismatch; skip defensively if it
            // somehow does rather than poisoning the checkpoint.
            if engine.step_normed(row, &mut self.prefix, inf).is_err() {
                break;
            }
        }
    }

    /// The prefix checkpoint (batched path: gathered into a lane before
    /// the live step).
    pub(crate) fn prefix(&self) -> &StreamState {
        &self.prefix
    }

    /// Mutable prefix checkpoint (batched path: scatter target after a
    /// batched replay).
    pub(crate) fn prefix_mut(&mut self) -> &mut StreamState {
        &mut self.prefix
    }

    /// Rows currently in the history ring — the batched-replay grouping
    /// key (lanes in one replay batch must step the same row count).
    pub(crate) fn ring_rows(&self) -> usize {
        self.ring_rows
    }

    /// The `i`-th oldest ring row (replay order), for batched replay.
    pub(crate) fn ring_row(&self, i: usize, dim: usize) -> &[f64] {
        let idx = (self.ring_head + i) % self.ring_rows;
        &self.ring[idx * dim..(idx + 1) * dim]
    }

    /// The previous tick's prediction — the batched path's fallback when
    /// a lane's row failed to normalize (impossible for engine-shaped
    /// buffers, mirrored from the per-session path anyway).
    pub(crate) fn last_prediction(&self) -> [f64; 4] {
        self.last_prediction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_ml::{LstmRegressor, RegressorConfig};

    fn engine() -> StreamingRegressor {
        let set = FeatureSet::FfcPruned;
        let config = RegressorConfig::standard(set.dim(), ActuatorSignal::DIM);
        LstmRegressor::new(config, 42).compile()
    }

    #[test]
    fn nominal_session_stays_nominal_and_is_deterministic() {
        let eng = engine();
        let params = SessionParams::default();
        let mut a = VehicleSession::new(SessionSpec::new(3, 77), &eng, &params);
        let mut b = VehicleSession::new(SessionSpec::new(3, 77), &eng, &params);
        let mut sa = ShardScratch::for_engine(&eng);
        let mut sb = ShardScratch::for_engine(&eng);
        for _ in 0..300 {
            let ra = a.tick(&eng, &params, &mut sa).expect("in budget");
            let rb = b.tick(&eng, &params, &mut sb).expect("in budget");
            assert_eq!(ra, rb);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.health(), HealthState::Nominal);
        assert_eq!(a.recovery_activations(), 0);
    }

    #[test]
    fn sessions_with_different_seeds_diverge() {
        let eng = engine();
        let params = SessionParams::default();
        let mut a = VehicleSession::new(SessionSpec::new(0, 1), &eng, &params);
        let mut b = VehicleSession::new(SessionSpec::new(1, 2), &eng, &params);
        let mut s = ShardScratch::for_engine(&eng);
        for _ in 0..50 {
            let _ = a.tick(&eng, &params, &mut s).expect("in budget");
            let _ = b.tick(&eng, &params, &mut s).expect("in budget");
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn faulted_session_trips_monitor_and_recovers_or_degrades() {
        let eng = engine();
        let params = SessionParams::default();
        let spec = SessionSpec::new(9, 5).with_fault(FaultSchedule::Continuous { start: 1.0 });
        let mut s = VehicleSession::new(spec, &eng, &params);
        let mut scratch = ShardScratch::for_engine(&eng);
        let mut tripped_any = false;
        for _ in 0..600 {
            match s.tick(&eng, &params, &mut scratch) {
                Ok(r) => tripped_any |= r.tripped,
                Err(e) => panic!("unexpected quarantine: {e}"),
            }
        }
        assert!(tripped_any, "a 35 m position bias must trip the CUSUM");
        assert!(
            s.recovery_activations() > 0 || s.health() == HealthState::Degraded,
            "the supervisor must have reacted: health {:?}",
            s.health()
        );
    }

    #[test]
    fn strategies_are_deterministic_and_default_matches_algorithm1() {
        let eng = engine();
        // Every strategy is deterministic over a faulted flight, and the
        // default params run Algorithm 1 exactly (fingerprint identity
        // with an explicit Algorithm 1 selection).
        let fp = |strategy: StrategyKind| {
            let params = SessionParams {
                strategy,
                ..SessionParams::default()
            };
            let spec =
                SessionSpec::new(9, 5).with_fault(FaultSchedule::Continuous { start: 1.0 });
            let mut s = VehicleSession::new(spec, &eng, &params);
            let mut scratch = ShardScratch::for_engine(&eng);
            for _ in 0..600 {
                s.tick(&eng, &params, &mut scratch).expect("in budget");
            }
            (s.fingerprint(), s.recovery_activations(), s.health())
        };
        for kind in StrategyKind::ALL {
            assert_eq!(fp(kind), fp(kind), "{kind} must be deterministic");
        }
        let default_params = SessionParams::default();
        assert_eq!(default_params.strategy, StrategyKind::Algorithm1);
        assert_eq!(fp(StrategyKind::Algorithm1).0, {
            let spec =
                SessionSpec::new(9, 5).with_fault(FaultSchedule::Continuous { start: 1.0 });
            let mut s = VehicleSession::new(spec, &eng, &default_params);
            let mut scratch = ShardScratch::for_engine(&eng);
            for _ in 0..600 {
                s.tick(&eng, &default_params, &mut scratch).expect("in budget");
            }
            s.fingerprint()
        });
    }

    #[test]
    fn diagnosis_strategy_blames_then_clears() {
        let eng = engine();
        let params = SessionParams {
            strategy: StrategyKind::DiagnosisGuided,
            ..SessionParams::default()
        };
        // Fault window ends at t=3: blame must be assigned during the
        // fault and cleared once the session settles back to nominal.
        let spec =
            SessionSpec::new(9, 5).with_fault(FaultSchedule::Windows(vec![(1.0, 3.0)]));
        let mut s = VehicleSession::new(spec, &eng, &params);
        let mut scratch = ShardScratch::for_engine(&eng);
        let mut blamed_during = false;
        for _ in 0..1500 {
            s.tick(&eng, &params, &mut scratch).expect("in budget");
            blamed_during |= s.blamed_axis.is_some();
        }
        assert!(blamed_during, "the fault must draw blame onto an axis");
        if s.health() == HealthState::Nominal {
            assert_eq!(s.blamed_axis, None, "blame clears once nominal");
        }
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let eng = engine();
        let params = SessionParams::default();
        let spec =
            SessionSpec::new(1, 1).with_budget(MissionBudget::default().with_step_budget(10));
        let mut s = VehicleSession::new(spec, &eng, &params);
        let mut scratch = ShardScratch::for_engine(&eng);
        let mut err = None;
        for _ in 0..20 {
            if let Err(e) = s.tick(&eng, &params, &mut scratch) {
                err = Some(e);
                break;
            }
        }
        assert!(
            matches!(err, Some(MissionError::StepBudgetExhausted { budget: 10, .. })),
            "got {err:?}"
        );
        // Deadline variant.
        let spec =
            SessionSpec::new(2, 1).with_budget(MissionBudget::default().with_deadline(0.05));
        let mut s = VehicleSession::new(spec, &eng, &params);
        let mut err = None;
        for _ in 0..20 {
            if let Err(e) = s.tick(&eng, &params, &mut scratch) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(MissionError::DeadlineExceeded { .. })));
    }

    #[test]
    fn from_mission_derives_session_fields() {
        use pidpiper_missions::{MissionPlan, RunnerConfig};
        use pidpiper_sim::RvId;
        let spec = MissionSpec {
            config: RunnerConfig::for_rv(RvId::ArduCopter),
            plan: MissionPlan::straight_line(50.0, 5.0),
            attacks: Vec::new(),
        };
        let a = SessionSpec::from_mission(0, &spec);
        let b = SessionSpec::from_mission(1, &spec);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.target.position, spec.plan.destination());
        // Deterministic: same id, same mission, same spec.
        assert_eq!(a, SessionSpec::from_mission(0, &spec));
    }

    #[test]
    fn resident_bytes_accounts_ring_and_state() {
        let eng = engine();
        let params = SessionParams::default();
        let s = VehicleSession::new(SessionSpec::new(0, 0), &eng, &params);
        let b = s.resident_bytes(&eng);
        assert!(b >= eng.session_state_bytes());
        // Standard config: 4*24*8 state + 19*24*8 ring = 4416 bytes + struct.
        // The ~5 KB/session budget also covers the amortized share of the
        // shard-level batch scratch (see engine::bytes_per_session tests).
        assert!(b < 5 * 1024, "session must stay compact, got {b} bytes");
    }
}
