//! The fleet engine: N sessions, S shards, W workers, one deterministic
//! tick loop.

use pidpiper_control::ActuatorSignal;
use pidpiper_core::features::FeatureSet;
use pidpiper_missions::configured_jobs;
use pidpiper_ml::{BatchedStreamingRegressor, LstmRegressor, RegressorConfig, StreamingRegressor};

use crate::session::{SessionParams, SessionSpec};
use crate::shard::{Admission, AdmissionError, RetiredSession, Shard, ShardTickStats};

/// How shards run their sessions' inference each tick.
///
/// Both modes produce bit-identical session fingerprints (the bench's
/// `batch_invariant` gate compares them); the knob exists for A/B
/// measurement and as an escape hatch. The batched f64 path is the only
/// batched mode a fleet can run: `pidpiper_ml::BatchPrecision::F32` is
/// deliberately not constructible here, so the non-deterministic f32
/// kernels can never sit under `FleetEngine::tick` (a determinism root —
/// the analyzer's DT06 rule enforces this at CI time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetBatch {
    /// One matrix–vector streaming pass per session (the PR-5 loop).
    PerSession,
    /// Cache-blocked matrix–matrix kernels over lanes of up to 64
    /// sessions (`shard::BATCH_WIDTH`) sharing the shard's model (the
    /// default).
    #[default]
    Batched,
}

impl FleetBatch {
    /// Parses the `PIDPIPER_FLEET_BATCH` knob value. Accepts
    /// `batched`/`1`/`on` and `per_session`/`per-session`/`0`/`off`
    /// (case-insensitive); anything else is `None` (callers keep their
    /// default).
    pub fn parse(s: &str) -> Option<FleetBatch> {
        match s.to_ascii_lowercase().as_str() {
            "batched" | "batch" | "1" | "on" => Some(FleetBatch::Batched),
            "per_session" | "per-session" | "scalar" | "0" | "off" => {
                Some(FleetBatch::PerSession)
            }
            _ => None,
        }
    }

    /// The knob spelling (`batched` / `per_session`), for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetBatch::PerSession => "per_session",
            FleetBatch::Batched => "batched",
        }
    }
}

/// Fleet-engine configuration. Every field maps to an operator knob
/// documented in `OPERATIONS.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of shards (fixed for the fleet's lifetime; sessions pin to
    /// `id % shards`).
    pub shards: usize,
    /// Worker threads a fleet tick fans shards out over. Defaults to
    /// [`configured_jobs`] (the `PIDPIPER_JOBS` contract). Worker count
    /// never affects results, only wall-clock.
    pub workers: usize,
    /// Max resident sessions per shard (admission limit).
    pub shard_capacity: usize,
    /// Max sessions waiting in each shard's pending queue; submissions
    /// beyond capacity + queue are rejected with
    /// [`AdmissionError::ShardSaturated`].
    pub pending_capacity: usize,
    /// Deadline budget per shard tick, in deterministic cost units
    /// (`u64::MAX` = capacity-limited only). One session tick costs
    /// `1 + ceil((window - 1) / decimate)` units — its amortized
    /// LSTM-step count.
    pub shard_cost_budget: u64,
    /// Per-session tick parameters (CUSUM, supervisor, fault bias …).
    pub session: SessionParams,
    /// Inference mode per shard tick (`PIDPIPER_FLEET_BATCH` in the
    /// bench). Bit-identical either way; batched is the default.
    pub batch: FleetBatch,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 64,
            workers: configured_jobs(),
            shard_capacity: 4096,
            pending_capacity: 64,
            shard_cost_budget: u64::MAX,
            session: SessionParams::default(),
            batch: FleetBatch::default(),
        }
    }
}

impl FleetConfig {
    /// Clamps degenerate values (zero shards/capacity) to workable ones.
    fn sanitized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.workers = self.workers.max(1);
        self.shard_capacity = self.shard_capacity.max(1);
        self
    }
}

/// Cumulative fleet counters (monotonic over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Sessions submitted (admitted + queued + rejected).
    pub submitted: u64,
    /// Sessions admitted directly on submit.
    pub admitted: u64,
    /// Sessions that entered a pending queue on submit.
    pub queued: u64,
    /// Submissions rejected with a typed [`AdmissionError`].
    pub rejected: u64,
    /// Sessions later admitted from a pending queue.
    pub admitted_from_queue: u64,
    /// Sessions retired into quarantine.
    pub retired: u64,
    /// Total session ticks executed.
    pub session_ticks: u64,
    /// Worker-chunk panics caught at the tick join boundary (0 in any
    /// healthy run; counted instead of propagated, mirroring the PR-4
    /// isolation contract).
    pub join_failures: u64,
}

/// The sharded session scheduler.
///
/// One engine owns one compiled [`StreamingRegressor`] (shared by every
/// session), `shards` independent shards, and the cumulative
/// [`FleetStats`]. See the "Fleet engine" section of `ARCHITECTURE.md`
/// for the lifecycle diagram and `OPERATIONS.md` for the operator guide.
///
/// # Determinism
///
/// A fleet tick maps each worker to a fixed contiguous shard range
/// (steal-free; chunk boundaries depend only on shard and worker counts)
/// and shards share no mutable state, so per-session results — every
/// prediction bit, every health transition, every fingerprint — are
/// identical for any worker count, and (given full admission) for any
/// shard count. Wall-clock latency is *measured* by the bench layer but
/// never feeds back into scheduling.
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
    model: StreamingRegressor,
    /// The batched (always f64-exact) form of `model`; `None` under
    /// [`FleetBatch::PerSession`].
    batched: Option<BatchedStreamingRegressor>,
    session_cost: u64,
    shards: Vec<Shard>,
    ticks: u64,
    stats: FleetStats,
}

impl FleetEngine {
    /// Builds a fleet around a compiled inference engine.
    pub fn new(model: StreamingRegressor, config: FleetConfig) -> Self {
        let config = config.sanitized();
        let c = model.config();
        let session_cost = 1 + ((c.window - 1) as u64).div_ceil(config.session.decimate.max(1) as u64);
        let batched = match config.batch {
            // Always BatchPrecision::Exact: the f32 mode must stay
            // unreachable from this determinism root.
            FleetBatch::Batched => Some(BatchedStreamingRegressor::compile(&model)),
            FleetBatch::PerSession => None,
        };
        let shards = (0..config.shards)
            .map(|i| {
                Shard::new(
                    i,
                    config.shard_capacity,
                    config.pending_capacity,
                    config.shard_cost_budget,
                    session_cost,
                    &model,
                    batched.as_ref(),
                )
            })
            .collect();
        FleetEngine {
            config,
            model,
            batched,
            session_cost,
            shards,
            ticks: 0,
            stats: FleetStats::default(),
        }
    }

    /// Builds a fleet around a freshly initialized network at the
    /// deployed configuration (FfcPruned features, standard regressor).
    ///
    /// The weights are untrained — seeded Xavier initialization — which
    /// leaves inference cost, memory footprint and every scheduling /
    /// determinism property identical to a trained artifact; only the
    /// prediction *values* differ. Benches and examples use this to avoid
    /// a training run.
    pub fn with_synthetic_model(config: FleetConfig, seed: u64) -> Self {
        let set = FeatureSet::FfcPruned;
        let rc = RegressorConfig::standard(set.dim(), ActuatorSignal::DIM);
        FleetEngine::new(LstmRegressor::new(rc, seed).compile(), config)
    }

    /// The engine configuration (post-sanitization).
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shared inference engine.
    pub fn model(&self) -> &StreamingRegressor {
        &self.model
    }

    /// Deterministic cost of one session tick, in cost units.
    pub fn session_cost(&self) -> u64 {
        self.session_cost
    }

    /// Fleet ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Currently resident sessions across all shards.
    pub fn resident_sessions(&self) -> usize {
        self.shards.iter().map(Shard::resident).sum()
    }

    /// Sessions currently waiting in pending queues.
    pub fn pending_sessions(&self) -> usize {
        self.shards.iter().map(Shard::pending).sum()
    }

    /// Marginal resident bytes of one session: the streaming state the ml
    /// layer accounts ([`StreamingRegressor::session_state_bytes`]), the
    /// session struct itself (spec, CUSUMs, supervisor, counters), and —
    /// under [`FleetBatch::Batched`] — the shard's batched working set
    /// (64-lane panels plus staging) amortized over the
    /// shard's session capacity, so `bytes_per_session` stays honest
    /// about everything a resident session costs.
    pub fn bytes_per_session(&self) -> usize {
        let batch_scratch = self
            .shards
            .first()
            .map_or(0, Shard::batch_bytes)
            .div_ceil(self.config.shard_capacity.max(1));
        self.model.session_state_bytes()
            + std::mem::size_of::<crate::session::VehicleSession>()
            + batch_scratch
    }

    /// Submits one session to its home shard (`spec.id % shards`).
    ///
    /// Never blocks: the session is admitted, queued behind the shard's
    /// backpressure, or rejected with a typed error — always immediately.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::ShardSaturated`] when the home shard is at
    /// capacity (or past its cost budget) and its pending queue is full.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<Admission, AdmissionError> {
        self.stats.submitted += 1;
        let shard = (spec.id % self.shards.len() as u64) as usize;
        let outcome = self.shards[shard].submit(spec, &self.model, &self.config.session);
        match &outcome {
            Ok(Admission::Admitted { .. }) => self.stats.admitted += 1,
            Ok(Admission::Queued { .. }) => self.stats.queued += 1,
            Err(_) => self.stats.rejected += 1,
        }
        outcome
    }

    /// Runs one fleet tick: every shard drains its pending queue into
    /// freed capacity, then ticks its sessions in admission order.
    /// Workers process fixed contiguous shard ranges in parallel.
    pub fn tick(&mut self) -> ShardTickStats {
        let workers = self.config.workers.min(self.shards.len()).max(1);
        let model = &self.model;
        let batched = self.batched.as_ref();
        let params = &self.config.session;
        let mut merged = ShardTickStats::default();
        let mut join_failures = 0u64;
        if workers == 1 {
            for shard in &mut self.shards {
                merged.merge(&shard.tick(model, params, batched));
            }
        } else {
            let chunk = self.shards.len().div_ceil(workers);
            let mut results: Vec<ShardTickStats> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .chunks_mut(chunk)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut acc = ShardTickStats::default();
                            for shard in chunk {
                                acc.merge(&shard.tick(model, params, batched));
                            }
                            acc
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(acc) => results.push(acc),
                        Err(_) => join_failures += 1,
                    }
                }
            });
            for r in &results {
                merged.merge(r);
            }
        }
        self.ticks += 1;
        self.stats.session_ticks += merged.session_ticks;
        self.stats.admitted_from_queue += merged.admitted_from_queue;
        self.stats.retired += merged.retired;
        self.stats.join_failures += join_failures;
        merged
    }

    /// Runs `n` fleet ticks, returning the stats of the last one.
    pub fn run_ticks(&mut self, n: usize) -> ShardTickStats {
        let mut last = ShardTickStats::default();
        for _ in 0..n {
            last = self.tick();
        }
        last
    }

    /// Per-session behavioral fingerprints — live *and* retired sessions
    /// — sorted by session id. This is the value the determinism gate
    /// compares across worker and shard counts.
    pub fn session_fingerprints(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(
            self.resident_sessions() + self.stats.retired as usize,
        );
        for shard in &self.shards {
            for s in shard.sessions() {
                out.push((s.id(), s.fingerprint()));
            }
            for r in shard.retired_sessions() {
                out.push((r.id, r.fingerprint));
            }
        }
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// All quarantined sessions with their typed errors, sorted by id.
    pub fn quarantined(&self) -> Vec<&RetiredSession> {
        let mut out: Vec<&RetiredSession> = self
            .shards
            .iter()
            .flat_map(|s| s.retired_sessions().iter())
            .collect();
        out.sort_unstable_by_key(|r| r.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_faults::FaultSchedule;
    use pidpiper_missions::MissionBudget;

    /// A small but adversarial fleet: faulted sessions, budget-retired
    /// sessions, shard populations spanning several batch chunks, and a
    /// second admission wave so ring warm-up states (and hence batched
    /// replay groups) are ragged.
    fn run_fleet(batch: FleetBatch) -> (Vec<(u64, u64)>, FleetStats) {
        let config = FleetConfig {
            shards: 3,
            workers: 1,
            shard_capacity: 200,
            pending_capacity: 16,
            shard_cost_budget: u64::MAX,
            session: SessionParams::default(),
            batch,
        };
        let mut engine = FleetEngine::with_synthetic_model(config, 2027);
        let spec = |id: u64| {
            let mut s = SessionSpec::new(id, id.wrapping_mul(11) ^ 5);
            if id.is_multiple_of(5) {
                s = s.with_fault(FaultSchedule::Continuous { start: 0.05 });
            }
            if id.is_multiple_of(17) {
                s = s.with_budget(MissionBudget::default().with_step_budget(20));
            }
            s
        };
        for id in 0..150 {
            engine.submit(spec(id)).expect("admitted or queued");
        }
        engine.run_ticks(30);
        // Second wave: these sessions' rings warm up out of phase with the
        // first wave's, exercising the ragged replay grouping.
        for id in 150..180 {
            engine.submit(spec(id)).expect("admitted or queued");
        }
        engine.run_ticks(33);
        (engine.session_fingerprints(), *engine.stats())
    }

    #[test]
    fn batched_and_per_session_fleets_are_bit_identical() {
        let (fp_batched, stats_batched) = run_fleet(FleetBatch::Batched);
        let (fp_scalar, stats_scalar) = run_fleet(FleetBatch::PerSession);
        assert_eq!(fp_batched.len(), fp_scalar.len());
        assert_eq!(fp_batched, fp_scalar, "batched inference changed a fingerprint");
        assert_eq!(stats_batched, stats_scalar);
        assert!(stats_batched.retired > 0, "budget retirement must occur in-run");
    }

    #[test]
    fn batch_scratch_is_amortized_into_bytes_per_session() {
        let scalar = FleetEngine::with_synthetic_model(
            FleetConfig {
                batch: FleetBatch::PerSession,
                ..FleetConfig::default()
            },
            7,
        );
        let batched = FleetEngine::with_synthetic_model(
            FleetConfig {
                batch: FleetBatch::Batched,
                ..FleetConfig::default()
            },
            7,
        );
        let a = scalar.bytes_per_session();
        let b = batched.bytes_per_session();
        assert!(b > a, "batched accounting must include the amortized scratch");
        // The ~5 KB/session budget from OPERATIONS.md holds with the
        // batch scratch amortized in.
        assert!(b < 5 * 1024, "session must stay under ~5 KB, got {b}");
    }

    #[test]
    fn fleet_batch_knob_parses_and_prints() {
        assert_eq!(FleetBatch::parse("batched"), Some(FleetBatch::Batched));
        assert_eq!(FleetBatch::parse("ON"), Some(FleetBatch::Batched));
        assert_eq!(FleetBatch::parse("per_session"), Some(FleetBatch::PerSession));
        assert_eq!(FleetBatch::parse("off"), Some(FleetBatch::PerSession));
        assert_eq!(FleetBatch::parse("sideways"), None);
        assert_eq!(FleetBatch::Batched.as_str(), "batched");
        assert_eq!(FleetBatch::PerSession.as_str(), "per_session");
        assert_eq!(FleetBatch::default(), FleetBatch::Batched);
    }
}
