//! Shards: the steal-free unit of parallelism.
//!
//! Every session is pinned to shard `id % shard_count` for life. A shard
//! owns its sessions, its pending-admission queue, its quarantine list
//! and one heavy [`ShardScratch`]; a fleet tick gives each worker a fixed
//! contiguous range of shards and no work ever migrates. Determinism
//! falls out: the sessions of a shard tick in admission order, shards
//! never share mutable state, so the fleet's per-session results are
//! bit-identical for *any* worker count — the serial/parallel equivalence
//! contract of the PR-4 batch layer, extended to fleet ticks.

use std::collections::VecDeque;

use pidpiper_missions::{HealthState, MissionError};
use pidpiper_ml::{BatchScratch, BatchedStreamingRegressor, StreamingRegressor};

use crate::session::{SessionParams, SessionSpec, ShardScratch, TickPrologue, VehicleSession};

/// Lane capacity of the per-shard batched working set: sessions tick
/// through the batched kernels in chunks of this many lanes. 64 lanes
/// keep the f64 panels (~140 KB at the standard config) inside L2 while
/// amortizing each weight load across 8x more sessions than the GEMM
/// lane width alone.
pub(crate) const BATCH_WIDTH: usize = 64;

/// Per-shard working set of the batched tick path: the struct-of-arrays
/// panels plus staging and bookkeeping buffers, allocated once and reused
/// every tick. Shard-resident (one per shard, like [`ShardScratch`]), so
/// its footprint is amortized over the shard's resident sessions — see
/// `FleetEngine::bytes_per_session`.
#[derive(Debug)]
pub(crate) struct BatchState {
    scratch: BatchScratch,
    /// Live normalized rows staged per lane (`input_dim * BATCH_WIDTH`);
    /// kept out of the panels so the replay phase can reuse them after
    /// the ring push.
    normed: Vec<f64>,
    /// Session indices that completed their prologue this chunk.
    lanes: Vec<usize>,
    /// Their prologues, parallel to `lanes`.
    pros: Vec<TickPrologue>,
    /// `(session index, error)` pairs retired once the tick completes —
    /// deferred so batched lane numbering stays stable mid-tick.
    errored: Vec<(usize, MissionError)>,
    /// Sessions owing a prefix replay this tick (decimation boundary).
    replay: Vec<usize>,
}

impl BatchState {
    fn new(batched: &BatchedStreamingRegressor) -> Self {
        let dim = batched.engine().config().input_dim;
        BatchState {
            scratch: batched.scratch(BATCH_WIDTH),
            normed: vec![0.0; dim * BATCH_WIDTH],
            lanes: Vec::with_capacity(BATCH_WIDTH),
            pros: Vec::with_capacity(BATCH_WIDTH),
            errored: Vec::with_capacity(BATCH_WIDTH),
            replay: Vec::with_capacity(BATCH_WIDTH),
        }
    }

    /// Heap bytes of the whole batched working set (panels + staging +
    /// bookkeeping), for capacity-planning amortization.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.scratch.resident_bytes()
            + self.normed.capacity() * std::mem::size_of::<f64>()
            + self.lanes.capacity() * std::mem::size_of::<usize>()
            + self.pros.capacity() * std::mem::size_of::<TickPrologue>()
            + self.errored.capacity() * std::mem::size_of::<(usize, MissionError)>()
            + self.replay.capacity() * std::mem::size_of::<usize>()
    }
}

/// Why the fleet refused a session outright (neither admitted nor
/// queued). Submission never blocks and never silently drops: callers
/// get this typed error and decide whether to retry later, shed load, or
/// route the vehicle to another fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The target shard is at resident capacity (or past its tick cost
    /// budget) *and* its pending queue is full.
    ShardSaturated {
        /// The shard that refused the session.
        shard: usize,
        /// Sessions currently resident on that shard.
        resident: usize,
        /// Sessions already waiting in its pending queue.
        queued: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ShardSaturated {
                shard,
                resident,
                queued,
            } => write!(
                f,
                "shard {shard} saturated: {resident} resident sessions, {queued} queued"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Successful submission outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The session is resident and ticks from the next fleet tick on.
    Admitted {
        /// The shard it landed on.
        shard: usize,
    },
    /// The shard is behind its deadline budget; the session waits in the
    /// shard's pending queue and is admitted (in FIFO order) as soon as
    /// capacity frees up — backpressure, not rejection.
    Queued {
        /// The shard whose queue it joined.
        shard: usize,
        /// Its position in that queue (1 = next to admit).
        depth: usize,
    },
}

/// A session retired into quarantine with its typed error — the PR-4
/// quarantine contract applied to fleet sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredSession {
    /// The retired session's identity.
    pub id: u64,
    /// Ticks it flew before retirement.
    pub ticks: u64,
    /// Its final behavioral fingerprint (still part of the determinism
    /// gate: retirement timing is deterministic too).
    pub fingerprint: u64,
    /// Why it was retired.
    pub error: MissionError,
}

/// Aggregate results of one shard tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTickStats {
    /// Session ticks executed.
    pub session_ticks: u64,
    /// Sessions admitted from the pending queue this tick.
    pub admitted_from_queue: u64,
    /// Sessions retired into quarantine this tick.
    pub retired: u64,
    /// Ticks whose CUSUM monitor was tripped.
    pub tripped: u64,
    /// Ticks with an active fault schedule.
    pub faulted: u64,
    /// Sessions currently in `Recovery`.
    pub in_recovery: u64,
    /// Sessions currently latched `Degraded`.
    pub degraded: u64,
}

impl ShardTickStats {
    /// Accumulates another shard's stats.
    pub fn merge(&mut self, other: &ShardTickStats) {
        self.session_ticks += other.session_ticks;
        self.admitted_from_queue += other.admitted_from_queue;
        self.retired += other.retired;
        self.tripped += other.tripped;
        self.faulted += other.faulted;
        self.in_recovery += other.in_recovery;
        self.degraded += other.degraded;
    }
}

/// One shard: resident sessions, pending queue, quarantine, scratch.
#[derive(Debug)]
pub(crate) struct Shard {
    index: usize,
    capacity: usize,
    pending_capacity: usize,
    /// Deadline budget in cost units per tick; a shard whose resident
    /// load would exceed it stops admitting directly.
    cost_budget: u64,
    /// Deterministic cost estimate of one session tick, in cost units.
    session_cost: u64,
    sessions: Vec<VehicleSession>,
    pending: VecDeque<SessionSpec>,
    retired: Vec<RetiredSession>,
    scratch: ShardScratch,
    /// Batched-path working set; `None` under `FleetBatch::PerSession`.
    batch: Option<BatchState>,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        capacity: usize,
        pending_capacity: usize,
        cost_budget: u64,
        session_cost: u64,
        engine: &StreamingRegressor,
        batched: Option<&BatchedStreamingRegressor>,
    ) -> Self {
        Shard {
            index,
            capacity,
            pending_capacity,
            cost_budget,
            session_cost: session_cost.max(1),
            sessions: Vec::new(),
            pending: VecDeque::new(),
            retired: Vec::new(),
            scratch: ShardScratch::for_engine(engine),
            batch: batched.map(BatchState::new),
        }
    }

    /// Heap bytes of the batched working set (0 under per-session mode).
    pub(crate) fn batch_bytes(&self) -> usize {
        self.batch.as_ref().map_or(0, BatchState::resident_bytes)
    }

    /// Whether one more resident session fits the resident cap and the
    /// tick cost budget.
    fn has_room(&self) -> bool {
        self.sessions.len() < self.capacity
            && (self.sessions.len() as u64 + 1).saturating_mul(self.session_cost)
                <= self.cost_budget
    }

    pub(crate) fn submit(
        &mut self,
        spec: SessionSpec,
        engine: &StreamingRegressor,
        params: &SessionParams,
    ) -> Result<Admission, AdmissionError> {
        if self.has_room() && self.pending.is_empty() {
            self.sessions.push(VehicleSession::new(spec, engine, params));
            Ok(Admission::Admitted { shard: self.index })
        } else if self.pending.len() < self.pending_capacity {
            self.pending.push_back(spec);
            Ok(Admission::Queued {
                shard: self.index,
                depth: self.pending.len(),
            })
        } else {
            Err(AdmissionError::ShardSaturated {
                shard: self.index,
                resident: self.sessions.len(),
                queued: self.pending.len(),
            })
        }
    }

    /// Ticks the shard: drains the pending queue into freed capacity
    /// (FIFO), then ticks every resident session in admission order,
    /// retiring budget violators into quarantine.
    ///
    /// With `batched` supplied (and a batch working set built for it),
    /// sessions tick through the batched kernels — bit-identical results,
    /// one matrix–matrix sweep per [`BATCH_WIDTH`] lanes instead of one
    /// matrix–vector sweep per session. `None` is the per-session (PR-5)
    /// path, byte for byte the pre-batching loop.
    pub(crate) fn tick(
        &mut self,
        engine: &StreamingRegressor,
        params: &SessionParams,
        batched: Option<&BatchedStreamingRegressor>,
    ) -> ShardTickStats {
        let mut stats = ShardTickStats::default();
        while self.has_room() {
            match self.pending.pop_front() {
                Some(spec) => {
                    self.sessions.push(VehicleSession::new(spec, engine, params));
                    stats.admitted_from_queue += 1;
                }
                None => break,
            }
        }
        match batched {
            Some(b) if self.batch.is_some() => self.tick_batched(engine, b, params, &mut stats),
            _ => self.tick_per_session(engine, params, &mut stats),
        }
        stats
    }

    /// The per-session tick loop (PR-5 streaming path, unchanged).
    fn tick_per_session(
        &mut self,
        engine: &StreamingRegressor,
        params: &SessionParams,
        stats: &mut ShardTickStats,
    ) {
        let mut i = 0;
        while i < self.sessions.len() {
            match self.sessions[i].tick(engine, params, &mut self.scratch) {
                Ok(r) => {
                    stats.session_ticks += 1;
                    stats.tripped += u64::from(r.tripped);
                    stats.faulted += u64::from(r.fault_active);
                    match r.health {
                        HealthState::Recovery => stats.in_recovery += 1,
                        HealthState::Degraded => stats.degraded += 1,
                        HealthState::Nominal => {}
                    }
                    i += 1;
                }
                Err(error) => {
                    let s = self.sessions.remove(i);
                    self.retired.push(RetiredSession {
                        id: s.id(),
                        ticks: s.ticks(),
                        fingerprint: s.fingerprint(),
                        error,
                    });
                    stats.retired += 1;
                }
            }
        }
    }

    /// The batched tick loop. Per chunk of [`BATCH_WIDTH`] sessions (in
    /// admission order — every resident session shares the shard's model,
    /// so the model-fingerprint grouping the batch key encodes is the
    /// whole shard):
    ///
    /// 1. **prologue/gather** — each session's budget check, synthetic
    ///    flight and normalization ([`VehicleSession::begin_tick`]); its
    ///    prefix checkpoint and live row are gathered into a panel lane.
    ///    Budget violators are set aside (lane numbering stays stable)
    ///    and retired after the loop, in the same ascending-index order
    ///    as the per-session path.
    /// 2. **batched inference** — one `step_batch` + `finish_batch` over
    ///    the active lanes replaces the chunk's matrix–vector passes.
    /// 3. **epilogue/scatter** — each lane's prediction feeds
    ///    [`VehicleSession::finish_tick`] (monitor, supervisor,
    ///    fingerprint, decimated ring push) with the prefix replay
    ///    *deferred*.
    ///
    /// Deferred replays are then grouped by ring row count (lanes in one
    /// replay batch must step the same number of rows — sessions
    /// mid-warmup or on a different decimation phase simply land in
    /// different groups or different ticks) and replayed through the
    /// batched kernels; groups of one fall back to the per-session
    /// [`VehicleSession::replay_prefix`]. Every f64 op matches the
    /// per-session path, so fingerprints are bit-identical — the fleet
    /// bench gates this (`batch_invariant`).
    fn tick_batched(
        &mut self,
        engine: &StreamingRegressor,
        batched: &BatchedStreamingRegressor,
        params: &SessionParams,
        stats: &mut ShardTickStats,
    ) {
        let state = self.batch.as_mut().expect("tick_batched without batch state");
        let sessions = &mut self.sessions;
        let shard_scratch = &mut self.scratch;
        let dim = engine.config().input_dim;
        state.errored.clear();
        state.replay.clear();

        let total = sessions.len();
        let mut start = 0;
        while start < total {
            let end = (start + BATCH_WIDTH).min(total);
            state.lanes.clear();
            state.pros.clear();
            for (off, session) in sessions[start..end].iter_mut().enumerate() {
                let i = start + off;
                let lane = state.lanes.len();
                let row = &mut state.normed[lane * dim..(lane + 1) * dim];
                match session.begin_tick(engine, params, &mut shard_scratch.feat, row) {
                    Ok(pro) => {
                        if pro.normed_ok {
                            state.scratch.load_state(lane, session.prefix());
                            state.scratch.load_row(lane, row);
                        }
                        state.lanes.push(i);
                        state.pros.push(pro);
                    }
                    Err(error) => state.errored.push((i, error)),
                }
            }
            let n = state.lanes.len();
            if n > 0 {
                batched.step_batch(&mut state.scratch, n);
                batched.finish_batch(&mut state.scratch, n);
            }
            let mut pred = [0.0f64; 4];
            for (lane, (&i, pro)) in state.lanes.iter().zip(&state.pros).enumerate() {
                let prediction = if pro.normed_ok {
                    state.scratch.read_output(lane, &mut pred);
                    pred
                } else {
                    sessions[i].last_prediction()
                };
                let row = &state.normed[lane * dim..(lane + 1) * dim];
                let (r, deferred) =
                    sessions[i].finish_tick(engine, params, prediction, pro, row, None);
                stats.session_ticks += 1;
                stats.tripped += u64::from(r.tripped);
                stats.faulted += u64::from(r.fault_active);
                match r.health {
                    HealthState::Recovery => stats.in_recovery += 1,
                    HealthState::Degraded => stats.degraded += 1,
                    HealthState::Nominal => {}
                }
                if deferred {
                    state.replay.push(i);
                }
            }
            start = end;
        }

        // Batched prefix replay, grouped by ring row count. The sort key
        // is (rows, index): deterministic, and sessions keep their
        // relative order inside a group.
        state
            .replay
            .sort_unstable_by_key(|&i| (sessions[i].ring_rows(), i));
        let mut g = 0;
        while g < state.replay.len() {
            let rows = sessions[state.replay[g]].ring_rows();
            let mut group_end = g + 1;
            while group_end < state.replay.len()
                && sessions[state.replay[group_end]].ring_rows() == rows
            {
                group_end += 1;
            }
            if group_end - g == 1 {
                // Ragged remainder: the per-session fallback.
                sessions[state.replay[g]].replay_prefix(engine, &mut shard_scratch.scratch);
            } else {
                let mut cs = g;
                while cs < group_end {
                    let ce = (cs + BATCH_WIDTH).min(group_end);
                    let lanes = &state.replay[cs..ce];
                    let n = lanes.len();
                    state.scratch.reset_states();
                    for t in 0..rows {
                        for (lane, &i) in lanes.iter().enumerate() {
                            state.scratch.load_row(lane, sessions[i].ring_row(t, dim));
                        }
                        batched.step_batch(&mut state.scratch, n);
                    }
                    for (lane, &i) in lanes.iter().enumerate() {
                        state.scratch.store_state(lane, sessions[i].prefix_mut());
                    }
                    cs = ce;
                }
            }
            g = group_end;
        }

        // Retire budget violators: records in ascending index order (the
        // per-session path's order), removals in descending order so the
        // collected indices stay valid.
        for (i, error) in &state.errored {
            let s = &sessions[*i];
            self.retired.push(RetiredSession {
                id: s.id(),
                ticks: s.ticks(),
                fingerprint: s.fingerprint(),
                error: error.clone(),
            });
            stats.retired += 1;
        }
        for (i, _) in state.errored.iter().rev() {
            sessions.remove(*i);
        }
    }

    pub(crate) fn resident(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending.len()
    }

    pub(crate) fn sessions(&self) -> &[VehicleSession] {
        &self.sessions
    }

    pub(crate) fn retired_sessions(&self) -> &[RetiredSession] {
        &self.retired
    }
}
