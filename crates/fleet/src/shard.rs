//! Shards: the steal-free unit of parallelism.
//!
//! Every session is pinned to shard `id % shard_count` for life. A shard
//! owns its sessions, its pending-admission queue, its quarantine list
//! and one heavy [`ShardScratch`]; a fleet tick gives each worker a fixed
//! contiguous range of shards and no work ever migrates. Determinism
//! falls out: the sessions of a shard tick in admission order, shards
//! never share mutable state, so the fleet's per-session results are
//! bit-identical for *any* worker count — the serial/parallel equivalence
//! contract of the PR-4 batch layer, extended to fleet ticks.

use std::collections::VecDeque;

use pidpiper_missions::{HealthState, MissionError};
use pidpiper_ml::StreamingRegressor;

use crate::session::{SessionParams, SessionSpec, ShardScratch, VehicleSession};

/// Why the fleet refused a session outright (neither admitted nor
/// queued). Submission never blocks and never silently drops: callers
/// get this typed error and decide whether to retry later, shed load, or
/// route the vehicle to another fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The target shard is at resident capacity (or past its tick cost
    /// budget) *and* its pending queue is full.
    ShardSaturated {
        /// The shard that refused the session.
        shard: usize,
        /// Sessions currently resident on that shard.
        resident: usize,
        /// Sessions already waiting in its pending queue.
        queued: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ShardSaturated {
                shard,
                resident,
                queued,
            } => write!(
                f,
                "shard {shard} saturated: {resident} resident sessions, {queued} queued"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Successful submission outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The session is resident and ticks from the next fleet tick on.
    Admitted {
        /// The shard it landed on.
        shard: usize,
    },
    /// The shard is behind its deadline budget; the session waits in the
    /// shard's pending queue and is admitted (in FIFO order) as soon as
    /// capacity frees up — backpressure, not rejection.
    Queued {
        /// The shard whose queue it joined.
        shard: usize,
        /// Its position in that queue (1 = next to admit).
        depth: usize,
    },
}

/// A session retired into quarantine with its typed error — the PR-4
/// quarantine contract applied to fleet sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredSession {
    /// The retired session's identity.
    pub id: u64,
    /// Ticks it flew before retirement.
    pub ticks: u64,
    /// Its final behavioral fingerprint (still part of the determinism
    /// gate: retirement timing is deterministic too).
    pub fingerprint: u64,
    /// Why it was retired.
    pub error: MissionError,
}

/// Aggregate results of one shard tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTickStats {
    /// Session ticks executed.
    pub session_ticks: u64,
    /// Sessions admitted from the pending queue this tick.
    pub admitted_from_queue: u64,
    /// Sessions retired into quarantine this tick.
    pub retired: u64,
    /// Ticks whose CUSUM monitor was tripped.
    pub tripped: u64,
    /// Ticks with an active fault schedule.
    pub faulted: u64,
    /// Sessions currently in `Recovery`.
    pub in_recovery: u64,
    /// Sessions currently latched `Degraded`.
    pub degraded: u64,
}

impl ShardTickStats {
    /// Accumulates another shard's stats.
    pub fn merge(&mut self, other: &ShardTickStats) {
        self.session_ticks += other.session_ticks;
        self.admitted_from_queue += other.admitted_from_queue;
        self.retired += other.retired;
        self.tripped += other.tripped;
        self.faulted += other.faulted;
        self.in_recovery += other.in_recovery;
        self.degraded += other.degraded;
    }
}

/// One shard: resident sessions, pending queue, quarantine, scratch.
#[derive(Debug)]
pub(crate) struct Shard {
    index: usize,
    capacity: usize,
    pending_capacity: usize,
    /// Deadline budget in cost units per tick; a shard whose resident
    /// load would exceed it stops admitting directly.
    cost_budget: u64,
    /// Deterministic cost estimate of one session tick, in cost units.
    session_cost: u64,
    sessions: Vec<VehicleSession>,
    pending: VecDeque<SessionSpec>,
    retired: Vec<RetiredSession>,
    scratch: ShardScratch,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        capacity: usize,
        pending_capacity: usize,
        cost_budget: u64,
        session_cost: u64,
        engine: &StreamingRegressor,
    ) -> Self {
        Shard {
            index,
            capacity,
            pending_capacity,
            cost_budget,
            session_cost: session_cost.max(1),
            sessions: Vec::new(),
            pending: VecDeque::new(),
            retired: Vec::new(),
            scratch: ShardScratch::for_engine(engine),
        }
    }

    /// Whether one more resident session fits the resident cap and the
    /// tick cost budget.
    fn has_room(&self) -> bool {
        self.sessions.len() < self.capacity
            && (self.sessions.len() as u64 + 1).saturating_mul(self.session_cost)
                <= self.cost_budget
    }

    pub(crate) fn submit(
        &mut self,
        spec: SessionSpec,
        engine: &StreamingRegressor,
        params: &SessionParams,
    ) -> Result<Admission, AdmissionError> {
        if self.has_room() && self.pending.is_empty() {
            self.sessions.push(VehicleSession::new(spec, engine, params));
            Ok(Admission::Admitted { shard: self.index })
        } else if self.pending.len() < self.pending_capacity {
            self.pending.push_back(spec);
            Ok(Admission::Queued {
                shard: self.index,
                depth: self.pending.len(),
            })
        } else {
            Err(AdmissionError::ShardSaturated {
                shard: self.index,
                resident: self.sessions.len(),
                queued: self.pending.len(),
            })
        }
    }

    /// Ticks the shard: drains the pending queue into freed capacity
    /// (FIFO), then ticks every resident session in admission order,
    /// retiring budget violators into quarantine.
    pub(crate) fn tick(
        &mut self,
        engine: &StreamingRegressor,
        params: &SessionParams,
    ) -> ShardTickStats {
        let mut stats = ShardTickStats::default();
        while self.has_room() {
            match self.pending.pop_front() {
                Some(spec) => {
                    self.sessions.push(VehicleSession::new(spec, engine, params));
                    stats.admitted_from_queue += 1;
                }
                None => break,
            }
        }
        let mut i = 0;
        while i < self.sessions.len() {
            match self.sessions[i].tick(engine, params, &mut self.scratch) {
                Ok(r) => {
                    stats.session_ticks += 1;
                    stats.tripped += u64::from(r.tripped);
                    stats.faulted += u64::from(r.fault_active);
                    match r.health {
                        HealthState::Recovery => stats.in_recovery += 1,
                        HealthState::Degraded => stats.degraded += 1,
                        HealthState::Nominal => {}
                    }
                    i += 1;
                }
                Err(error) => {
                    let s = self.sessions.remove(i);
                    self.retired.push(RetiredSession {
                        id: s.id(),
                        ticks: s.ticks(),
                        fingerprint: s.fingerprint(),
                        error,
                    });
                    stats.retired += 1;
                }
            }
        }
        stats
    }

    pub(crate) fn resident(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending.len()
    }

    pub(crate) fn sessions(&self) -> &[VehicleSession] {
        &self.sessions
    }

    pub(crate) fn retired_sessions(&self) -> &[RetiredSession] {
        &self.retired
    }
}
