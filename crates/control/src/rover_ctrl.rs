//! Ground-rover controller: heading and speed loops.
//!
//! Rovers control only the Z-axis rotation, so the actuator signal's
//! meaningful channels are `yaw_rate` (steering) and `thrust` (throttle);
//! roll and pitch are always zero. This matches the paper's Table I, which
//! calibrates only a yaw threshold for the rover platforms.

use crate::actuator::ActuatorSignal;
use crate::pid::{Pid, PidConfig};
use pidpiper_math::angles::angle_error;
use pidpiper_sensors::EstimatedState;
use pidpiper_sim::rover::{RoverCommand, RoverParams};

/// Target for the rover controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoverTarget {
    /// Target position (only x, y used).
    pub position: pidpiper_math::Vec3,
    /// Cruise speed towards the target (m/s).
    pub cruise_speed: f64,
}

/// Gains for the rover control loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoverGains {
    /// P gain: heading error (rad) → yaw-rate setpoint (rad/s).
    pub heading_p: f64,
    /// Maximum yaw-rate setpoint (rad/s).
    pub max_yaw_rate: f64,
    /// Speed-loop PID: speed error (m/s) → throttle.
    pub speed: PidConfig,
    /// Steering gain: yaw-rate setpoint → steering command.
    pub steer_gain: f64,
    /// Distance at which the rover starts slowing down (m).
    pub slowdown_radius: f64,
}

impl RoverGains {
    /// Reasonable gains for a rover with the given parameters.
    pub fn for_rover(params: &RoverParams) -> Self {
        RoverGains {
            heading_p: 2.5,
            max_yaw_rate: 1.5,
            speed: PidConfig {
                kp: 0.8,
                ki: 0.6,
                kd: 0.0,
                integral_limit: 0.6,
                output_limit: 1.0,
                derivative_filter: 0.5,
            },
            steer_gain: params.wheelbase / params.max_steer.max(1e-6),
            slowdown_radius: 3.0,
        }
    }
}

/// The rover control stack.
///
/// # Examples
///
/// ```
/// use pidpiper_control::rover_ctrl::{RoverController, RoverGains, RoverTarget};
/// use pidpiper_sensors::EstimatedState;
/// use pidpiper_sim::rover::RoverParams;
/// use pidpiper_math::Vec3;
///
/// let params = RoverParams::default();
/// let mut ctl = RoverController::new(RoverGains::for_rover(&params));
/// let est = EstimatedState::default();
/// let target = RoverTarget { position: Vec3::new(10.0, 0.0, 0.0), cruise_speed: 2.0 };
/// let (cmd, y) = ctl.step(&est, &target, None, 0.01);
/// assert!(cmd.throttle > 0.0);
/// assert_eq!(y.roll, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RoverController {
    gains: RoverGains,
    speed_pid: Pid,
    last_pid_signal: ActuatorSignal,
}

impl RoverController {
    /// Creates a rover controller.
    ///
    /// # Panics
    ///
    /// Panics if the speed PID configuration is invalid.
    pub fn new(gains: RoverGains) -> Self {
        RoverController {
            speed_pid: Pid::new(gains.speed),
            gains,
            last_pid_signal: ActuatorSignal::default(),
        }
    }

    /// The configured gains.
    pub fn gains(&self) -> &RoverGains {
        &self.gains
    }

    /// Resets integrators.
    pub fn reset(&mut self) {
        self.speed_pid.reset();
    }

    /// The actuator signal the PID produced on the last step.
    pub fn last_pid_signal(&self) -> ActuatorSignal {
        self.last_pid_signal
    }

    /// One control cycle.
    ///
    /// `override_signal` substitutes the flown signal (recovery mode), as
    /// in the quadcopter controller. Returns `(drive_command, pid_signal)`.
    pub fn step(
        &mut self,
        est: &EstimatedState,
        target: &RoverTarget,
        override_signal: Option<ActuatorSignal>,
        dt: f64,
    ) -> (RoverCommand, ActuatorSignal) {
        let g = &self.gains;
        let to_target = target.position - est.position;
        let dist = to_target.norm_xy();
        let desired_heading = to_target.y.atan2(to_target.x);
        let heading_err = angle_error(desired_heading, est.attitude.z);

        let yaw_rate_sp =
            (g.heading_p * heading_err).clamp(-g.max_yaw_rate, g.max_yaw_rate);

        // Slow down near the target; stop inside 0.5 m.
        let speed_sp = if dist < 0.5 {
            0.0
        } else {
            target.cruise_speed * (dist / g.slowdown_radius).min(1.0)
        };
        let speed = est.velocity.norm_xy();
        let throttle = self.speed_pid.update(speed_sp - speed, dt);

        let pid_signal = ActuatorSignal {
            roll: 0.0,
            pitch: 0.0,
            yaw_rate: yaw_rate_sp,
            thrust: throttle.clamp(0.0, 1.0),
        };
        self.last_pid_signal = pid_signal;

        let flown = override_signal.unwrap_or(pid_signal);
        let steering = (flown.yaw_rate * g.steer_gain).clamp(-1.0, 1.0);
        (
            RoverCommand {
                throttle: flown.thrust.clamp(-1.0, 1.0),
                steering,
            },
            pid_signal,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_math::Vec3;
    use pidpiper_sensors::{Estimator, NoiseConfig, SensorSuite};
    use pidpiper_sim::rover::Rover;

    #[test]
    fn drives_towards_target_closed_loop() {
        let params = RoverParams::default();
        let mut rover = Rover::new(params);
        let mut suite = SensorSuite::new(NoiseConfig::default(), 21);
        let mut est = Estimator::new();
        let mut ctl = RoverController::new(RoverGains::for_rover(&params));
        let target = RoverTarget {
            position: Vec3::new(15.0, 8.0, 0.0),
            cruise_speed: 2.0,
        };
        let dt = 0.01;
        for _ in 0..4000 {
            let readings = suite.sample(rover.state(), dt);
            let e = est.update(&readings, dt);
            let (cmd, _) = ctl.step(&e, &target, None, dt);
            for _ in 0..4 {
                rover.step(cmd, Vec3::ZERO, dt / 4.0);
            }
        }
        let dist = rover.state().position.distance_xy(target.position);
        assert!(!rover.is_crashed());
        assert!(dist < 1.5, "rover ended {dist} m from target");
    }

    #[test]
    fn stops_at_target() {
        let params = RoverParams::default();
        let mut ctl = RoverController::new(RoverGains::for_rover(&params));
        let est = EstimatedState {
            position: Vec3::new(10.0, 0.0, 0.0),
            ..EstimatedState::default()
        };
        let target = RoverTarget {
            position: Vec3::new(10.0, 0.2, 0.0),
            cruise_speed: 2.0,
        };
        let (cmd, _) = ctl.step(&est, &target, None, 0.01);
        assert!(cmd.throttle <= 0.05, "throttle {} at target", cmd.throttle);
    }

    #[test]
    fn heading_error_steers() {
        let params = RoverParams::default();
        let mut ctl = RoverController::new(RoverGains::for_rover(&params));
        let est = EstimatedState::default(); // facing +x
        let target = RoverTarget {
            position: Vec3::new(0.0, 10.0, 0.0), // due north (+y)
            cruise_speed: 2.0,
        };
        let (cmd, y) = ctl.step(&est, &target, None, 0.01);
        assert!(y.yaw_rate > 0.5, "yaw rate {}", y.yaw_rate);
        assert!(cmd.steering > 0.1);
    }

    #[test]
    fn override_replaces_pid_signal() {
        let params = RoverParams::default();
        let mut ctl = RoverController::new(RoverGains::for_rover(&params));
        let est = EstimatedState::default();
        let target = RoverTarget {
            position: Vec3::new(10.0, 0.0, 0.0),
            cruise_speed: 2.0,
        };
        let ovr = ActuatorSignal {
            yaw_rate: -1.0,
            thrust: 0.1,
            ..Default::default()
        };
        let (cmd, pid) = ctl.step(&est, &target, Some(ovr), 0.01);
        assert!(cmd.steering < 0.0, "override steering ignored");
        assert!((cmd.throttle - 0.1).abs() < 1e-12);
        // The PID's own opinion is still reported for monitoring.
        assert!(pid.yaw_rate.abs() < 0.2);
        assert!(pid.thrust > 0.1);
    }

    #[test]
    fn rover_signal_has_no_roll_pitch() {
        let params = RoverParams::default();
        let mut ctl = RoverController::new(RoverGains::for_rover(&params));
        let est = EstimatedState::default();
        let target = RoverTarget {
            position: Vec3::new(5.0, 5.0, 0.0),
            cruise_speed: 1.0,
        };
        let (_, y) = ctl.step(&est, &target, None, 0.01);
        assert_eq!(y.roll, 0.0);
        assert_eq!(y.pitch, 0.0);
    }
}
