//! Motor mixer: collective thrust + body torques → four motor commands.
//!
//! Inverts the X-frame geometry of the simulator's
//! [`pidpiper_sim::quadcopter::Quadcopter`]: motor ordering is
//! `0 = front-right (CCW), 1 = rear-left (CCW), 2 = front-left (CW),
//! 3 = rear-right (CW)`.

use pidpiper_math::Vec3;

/// Motor mixer for an X-configuration quadcopter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixer {
    /// Motor arm offset `d` (m) along each body axis.
    pub arm_offset: f64,
    /// Yaw reaction-torque coefficient (N·m per N of thrust).
    pub yaw_torque_coeff: f64,
    /// Maximum thrust of a single motor (N).
    pub max_motor_thrust: f64,
}

impl Mixer {
    /// Creates a mixer matching the given airframe geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(arm_offset: f64, yaw_torque_coeff: f64, max_motor_thrust: f64) -> Self {
        assert!(arm_offset > 0.0, "arm offset must be positive");
        assert!(yaw_torque_coeff > 0.0, "yaw torque coefficient must be positive");
        assert!(max_motor_thrust > 0.0, "max motor thrust must be positive");
        Mixer {
            arm_offset,
            yaw_torque_coeff,
            max_motor_thrust,
        }
    }

    /// Mixes normalized collective `thrust` (0..1 of total capability) and
    /// body `torque` (N·m) into four normalized motor commands, clamped to
    /// `[0, 1]`.
    ///
    /// Solves the linear system that the simulator's forward model defines:
    ///
    /// ```text
    /// f_fr = T/4 - tx/(4d) - ty/(4d) - tz/(4k)
    /// f_rl = T/4 + tx/(4d) + ty/(4d) - tz/(4k)
    /// f_fl = T/4 + tx/(4d) - ty/(4d) + tz/(4k)
    /// f_rr = T/4 - tx/(4d) + ty/(4d) + tz/(4k)
    /// ```
    pub fn mix(&self, thrust: f64, torque: Vec3) -> [f64; 4] {
        let total_thrust_n = thrust.clamp(0.0, 1.0) * 4.0 * self.max_motor_thrust;
        let quarter = total_thrust_n / 4.0;
        let dx = torque.x / (4.0 * self.arm_offset);
        let dy = torque.y / (4.0 * self.arm_offset);
        let dz = torque.z / (4.0 * self.yaw_torque_coeff);

        let f = [
            quarter - dx - dy - dz, // front-right (CCW)
            quarter + dx + dy - dz, // rear-left (CCW)
            quarter + dx - dy + dz, // front-left (CW)
            quarter - dx + dy + dz, // rear-right (CW)
        ];
        f.map(|fi| (fi / self.max_motor_thrust).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_sim::quadcopter::{QuadParams, Quadcopter};
    use pidpiper_sim::state::RigidBodyState;

    fn mixer_for(p: &QuadParams) -> Mixer {
        Mixer::new(p.arm_offset, p.yaw_torque_coeff, p.max_motor_thrust())
    }

    #[test]
    fn pure_thrust_is_uniform() {
        let p = QuadParams::default();
        let m = mixer_for(&p);
        let cmds = m.mix(0.5, Vec3::ZERO);
        for c in cmds {
            assert!((c - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn roll_torque_differential() {
        let p = QuadParams::default();
        let m = mixer_for(&p);
        let cmds = m.mix(0.5, Vec3::new(0.2, 0.0, 0.0));
        // +tau_x boosts RL and FL (left side), per the forward model.
        assert!(cmds[1] > 0.5 && cmds[2] > 0.5);
        assert!(cmds[0] < 0.5 && cmds[3] < 0.5);
    }

    #[test]
    fn mixer_inverts_simulator_torques() {
        // Feed mixed commands into the forward model and verify the quad
        // develops the requested torques (steady-state motor thrusts).
        let p = QuadParams::default();
        let m = mixer_for(&p);
        let torque = Vec3::new(0.08, -0.05, 0.01);
        let cmds = m.mix(0.5, torque);
        let mut q = Quadcopter::new(p);
        q.set_state(RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 50.0)));
        // Run long enough for the 40 ms motor lag to settle (0.2 s), with a
        // tiny dt so attitude barely moves.
        for _ in 0..2000 {
            q.step(cmds, Vec3::ZERO, 1e-4);
        }
        let [f_fr, f_rl, f_fl, f_rr] = q.motor_thrusts();
        let d = p.arm_offset;
        let tau_x = d * (f_rl + f_fl - f_fr - f_rr);
        let tau_y = d * (f_rl + f_rr - f_fr - f_fl);
        let tau_z = p.yaw_torque_coeff * (f_fl + f_rr - f_fr - f_rl);
        assert!((tau_x - torque.x).abs() < 0.01, "tau_x {tau_x}");
        assert!((tau_y - torque.y).abs() < 0.01, "tau_y {tau_y}");
        assert!((tau_z - torque.z).abs() < 0.005, "tau_z {tau_z}");
    }

    #[test]
    fn commands_always_in_unit_range() {
        let p = QuadParams::default();
        let m = mixer_for(&p);
        for &thrust in &[0.0, 0.3, 1.0, 2.0] {
            for &t in &[-10.0, -1.0, 0.0, 1.0, 10.0] {
                let cmds = m.mix(thrust, Vec3::new(t, -t, t));
                for c in cmds {
                    assert!((0.0..=1.0).contains(&c), "command {c} out of range");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "arm offset")]
    fn invalid_geometry_rejected() {
        let _ = Mixer::new(0.0, 0.01, 5.0);
    }
}
