//! Cascaded PID flight and drive controllers, following the ArduPilot
//! architecture sketched in Figure 1 of the PID-Piper paper.
//!
//! The control stack is split exactly along the paper's seams:
//!
//! - the **position controller** ([`position::PositionController`]) turns
//!   target position into velocity, acceleration and finally the *actuator
//!   signal* — target Euler angles, yaw rate and thrust
//!   ([`actuator::ActuatorSignal`]);
//! - the **attitude controller** ([`attitude::AttitudeController`]) turns
//!   the actuator signal into body-rate setpoints, torques and, through the
//!   [`mixer`], motor commands.
//!
//! The [`actuator::ActuatorSignal`] boundary is the quantity `y(t)` that
//! PID-Piper's ML model predicts, monitors and (during recovery)
//! substitutes.
//!
//! [`quad::QuadController`] assembles the full stack for quadcopters;
//! [`rover_ctrl::RoverController`] is the ground-vehicle equivalent (yaw
//! and speed channels only, which is why the paper calibrates only a yaw
//! threshold for rovers).

#![deny(missing_docs)]

pub mod actuator;
pub mod attitude;
pub mod mixer;
pub mod pid;
pub mod position;
pub mod quad;
pub mod rover_ctrl;

pub use actuator::ActuatorSignal;
pub use attitude::{AttitudeController, AttitudeGains};
pub use mixer::Mixer;
pub use pid::{Pid, PidConfig};
pub use position::{PositionController, PositionGains, TargetState};
pub use quad::{QuadController, QuadControlTelemetry};
pub use rover_ctrl::{RoverController, RoverGains, RoverTarget};
