//! Attitude controller: actuator signal → body-rate setpoints → torques.
//!
//! Inner loop of the cascade. Consumes the [`ActuatorSignal`] produced
//! either by the PID position controller (normal operation) or by
//! PID-Piper's ML model (recovery mode).

use crate::actuator::ActuatorSignal;
use crate::pid::{Pid, PidConfig};
use pidpiper_math::{angles::angle_error, Vec3};
use pidpiper_sensors::EstimatedState;

/// Gains for the attitude/rate cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttitudeGains {
    /// P gain: angle error (rad) → body-rate setpoint (rad/s).
    pub angle_p: f64,
    /// Maximum body-rate setpoint (rad/s).
    pub max_rate: f64,
    /// Rate-loop PID (per axis), producing normalized angular acceleration.
    pub rate: PidConfig,
    /// Body inertia diagonal (kg·m^2) for torque scaling.
    pub inertia: Vec3,
}

impl AttitudeGains {
    /// Reasonable gains for an airframe with the given inertia diagonal.
    pub fn for_inertia(inertia: Vec3) -> Self {
        AttitudeGains {
            angle_p: 5.0,
            max_rate: 3.0,
            rate: PidConfig {
                kp: 9.0,
                ki: 2.0,
                kd: 0.25,
                integral_limit: 3.0,
                output_limit: 40.0,
                derivative_filter: 0.5,
            },
            inertia,
        }
    }
}

/// The inner-loop attitude controller.
///
/// # Examples
///
/// ```
/// use pidpiper_control::attitude::{AttitudeController, AttitudeGains};
/// use pidpiper_control::actuator::ActuatorSignal;
/// use pidpiper_sensors::EstimatedState;
/// use pidpiper_math::Vec3;
///
/// let mut ac = AttitudeController::new(AttitudeGains::for_inertia(Vec3::new(0.03, 0.03, 0.06)));
/// let est = EstimatedState::default();
/// let y = ActuatorSignal { roll: 0.2, ..Default::default() };
/// let torque = ac.update(&est, &y, 0.01);
/// assert!(torque.x > 0.0); // positive roll torque towards the setpoint
/// ```
#[derive(Debug, Clone)]
pub struct AttitudeController {
    gains: AttitudeGains,
    rate_x: Pid,
    rate_y: Pid,
    rate_z: Pid,
}

impl AttitudeController {
    /// Creates a controller from gains.
    ///
    /// # Panics
    ///
    /// Panics if the rate PID configuration is invalid.
    pub fn new(gains: AttitudeGains) -> Self {
        AttitudeController {
            rate_x: Pid::new(gains.rate),
            rate_y: Pid::new(gains.rate),
            rate_z: Pid::new(gains.rate),
            gains,
        }
    }

    /// The configured gains.
    pub fn gains(&self) -> &AttitudeGains {
        &self.gains
    }

    /// Resets rate-loop integrators.
    pub fn reset(&mut self) {
        self.rate_x.reset();
        self.rate_y.reset();
        self.rate_z.reset();
    }

    /// Runs one attitude-control step, returning the body torque vector
    /// (N·m) to feed the mixer.
    pub fn update(&mut self, est: &EstimatedState, signal: &ActuatorSignal, dt: f64) -> Vec3 {
        let g = &self.gains;

        // Angle errors → rate setpoints (roll/pitch); yaw channel is a rate
        // command already.
        let rate_sp = Vec3::new(
            (g.angle_p * angle_error(signal.roll, est.attitude.x)).clamp(-g.max_rate, g.max_rate),
            (g.angle_p * angle_error(signal.pitch, est.attitude.y)).clamp(-g.max_rate, g.max_rate),
            signal.yaw_rate.clamp(-g.max_rate, g.max_rate),
        );

        // Rate errors → angular acceleration (PID), scaled by inertia into
        // torque.
        let ang_acc = Vec3::new(
            self.rate_x.update(rate_sp.x - est.body_rates.x, dt),
            self.rate_y.update(rate_sp.y - est.body_rates.y, dt),
            self.rate_z.update(rate_sp.z - est.body_rates.z, dt),
        );
        ang_acc.hadamard(g.inertia)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AttitudeController {
        AttitudeController::new(AttitudeGains::for_inertia(Vec3::new(0.029, 0.029, 0.055)))
    }

    #[test]
    fn roll_error_produces_roll_torque() {
        let mut ac = controller();
        let est = EstimatedState::default();
        let y = ActuatorSignal {
            roll: 0.3,
            ..Default::default()
        };
        let t = ac.update(&est, &y, 0.01);
        assert!(t.x > 0.0);
        assert!(t.y.abs() < 1e-9);
    }

    #[test]
    fn rate_damping_opposes_spin() {
        let mut ac = controller();
        let est = EstimatedState {
            body_rates: Vec3::new(2.0, 0.0, 0.0), // spinning in roll
            ..EstimatedState::default()
        };
        let y = ActuatorSignal::default(); // want level
        let t = ac.update(&est, &y, 0.01);
        assert!(t.x < 0.0, "torque must oppose the spin, got {}", t.x);
    }

    #[test]
    fn yaw_rate_command_passthrough() {
        let mut ac = controller();
        let est = EstimatedState::default();
        let y = ActuatorSignal {
            yaw_rate: 1.0,
            ..Default::default()
        };
        let t = ac.update(&est, &y, 0.01);
        assert!(t.z > 0.0);
    }

    #[test]
    fn rate_setpoint_is_clamped() {
        let mut ac = controller();
        let est = EstimatedState::default();
        // A huge angle error must saturate at max_rate, not explode.
        let y = ActuatorSignal {
            roll: 3.0,
            ..Default::default()
        };
        let t1 = ac.update(&est, &y, 0.01);
        ac.reset();
        let y2 = ActuatorSignal {
            roll: 30.0,
            ..Default::default()
        };
        let t2 = ac.update(&est, &y2, 0.01);
        // wrap_angle(30) is small, so compare against a clean saturation case:
        ac.reset();
        let y3 = ActuatorSignal {
            roll: 1.0,
            ..Default::default()
        };
        let t3 = ac.update(&est, &y3, 0.01);
        assert!((t1.x - t3.x).abs() / t1.x.abs() < 1.0, "both saturate: {} vs {}", t1.x, t3.x);
        let _ = t2;
    }

    #[test]
    fn torque_scales_with_inertia() {
        let small = AttitudeController::new(AttitudeGains::for_inertia(Vec3::splat(0.001)));
        let large = AttitudeController::new(AttitudeGains::for_inertia(Vec3::splat(0.1)));
        let est = EstimatedState::default();
        let y = ActuatorSignal {
            roll: 0.2,
            ..Default::default()
        };
        let mut s = small;
        let mut l = large;
        let ts = s.update(&est, &y, 0.01);
        let tl = l.update(&est, &y, 0.01);
        assert!(tl.x > ts.x * 50.0);
    }
}
