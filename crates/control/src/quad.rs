//! The assembled quadcopter controller: position + attitude + mixer.

use crate::actuator::ActuatorSignal;
use crate::attitude::{AttitudeController, AttitudeGains};
use crate::mixer::Mixer;
use crate::position::{PositionController, PositionGains, PositionTelemetry, TargetState};
use pidpiper_sensors::EstimatedState;
use pidpiper_sim::quadcopter::QuadParams;

/// Telemetry from one full control step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuadControlTelemetry {
    /// The actuator signal actually flown this step (PID's, or the ML
    /// model's during recovery).
    pub flown_signal: ActuatorSignal,
    /// The PID position controller's own signal (always computed, even in
    /// recovery, so the monitor can compare).
    pub pid_signal: ActuatorSignal,
    /// Position-controller intermediates (Fig. 2 telemetry).
    pub position: PositionTelemetry,
    /// Commanded body-rate magnitude (rad/s) — the paper's "rotation rate"
    /// trace (Fig. 2d).
    pub rotation_rate: f64,
}

/// Full quadcopter control stack.
///
/// Each [`QuadController::step`] runs the PID position controller, then
/// (optionally) substitutes an externally supplied actuator signal — this
/// is the hook PID-Piper's recovery module uses — and finally runs the
/// attitude loop and mixer to produce motor commands.
///
/// # Examples
///
/// ```
/// use pidpiper_control::quad::QuadController;
/// use pidpiper_control::position::TargetState;
/// use pidpiper_sensors::EstimatedState;
/// use pidpiper_sim::quadcopter::QuadParams;
/// use pidpiper_math::Vec3;
///
/// let mut ctl = QuadController::new(&QuadParams::default());
/// let est = EstimatedState::default();
/// let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0);
/// let (motors, y) = ctl.step(&est, &target, None, 0.01);
/// assert!(motors.iter().all(|m| (0.0..=1.0).contains(m)));
/// assert!(y.thrust > 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct QuadController {
    position: PositionController,
    attitude: AttitudeController,
    mixer: Mixer,
    telemetry: QuadControlTelemetry,
    max_tilt: f64,
    max_yaw_rate: f64,
}

impl QuadController {
    /// Builds the standard controller for an airframe.
    pub fn new(params: &QuadParams) -> Self {
        let pos_gains = PositionGains::for_quad(params.mass, 4.0 * params.max_motor_thrust());
        let att_gains = AttitudeGains::for_inertia(params.inertia);
        QuadController {
            max_tilt: pos_gains.max_tilt,
            max_yaw_rate: pos_gains.max_yaw_rate,
            position: PositionController::new(pos_gains),
            attitude: AttitudeController::new(att_gains),
            mixer: Mixer::new(
                params.arm_offset,
                params.yaw_torque_coeff,
                params.max_motor_thrust(),
            ),
            telemetry: QuadControlTelemetry::default(),
        }
    }

    /// Latest step telemetry.
    pub fn telemetry(&self) -> &QuadControlTelemetry {
        &self.telemetry
    }

    /// Resets all integrators (used between missions).
    pub fn reset(&mut self) {
        self.position.reset();
        self.attitude.reset();
    }

    /// Runs one control cycle.
    ///
    /// - `est`: the state estimate the autopilot believes;
    /// - `target`: the autonomous logic's target;
    /// - `override_signal`: when `Some`, this signal is flown instead of
    ///   the PID's own output (PID-Piper recovery, baseline recovery);
    ///   the PID output is still computed for monitoring;
    /// - returns `(motor_commands, pid_signal)`.
    pub fn step(
        &mut self,
        est: &EstimatedState,
        target: &TargetState,
        override_signal: Option<ActuatorSignal>,
        dt: f64,
    ) -> ([f64; 4], ActuatorSignal) {
        let pid_signal = self.position.update(est, target, dt);
        let flown = override_signal
            .map(|s| s.clamped(self.max_tilt, self.max_yaw_rate))
            .unwrap_or(pid_signal);

        let torque = self.attitude.update(est, &flown, dt);
        let motors = self.mixer.mix(flown.thrust, torque);

        self.telemetry = QuadControlTelemetry {
            flown_signal: flown,
            pid_signal,
            position: *self.position.telemetry(),
            rotation_rate: est.body_rates.norm(),
        };
        (motors, pid_signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pidpiper_math::Vec3;
    use pidpiper_sensors::{Estimator, NoiseConfig, SensorSuite};
    use pidpiper_sim::quadcopter::Quadcopter;

    /// Closed-loop fixture: simulator + sensors + estimator + controller.
    struct Loop {
        quad: Quadcopter,
        suite: SensorSuite,
        est: Estimator,
        ctl: QuadController,
    }

    impl Loop {
        fn new() -> Self {
            let params = QuadParams::default();
            Loop {
                quad: Quadcopter::new(params),
                suite: SensorSuite::new(NoiseConfig::default(), 11),
                est: Estimator::new(),
                ctl: QuadController::new(&params),
            }
        }

        fn run(&mut self, target: TargetState, seconds: f64) {
            let dt = 0.01; // 100 Hz control; physics sub-stepped at 400 Hz
            let steps = (seconds / dt) as usize;
            for _ in 0..steps {
                let readings = self.suite.sample(self.quad.state(), dt);
                let est = self.est.update(&readings, dt);
                let (motors, _) = self.ctl.step(&est, &target, None, dt);
                for _ in 0..4 {
                    self.quad.step(motors, Vec3::ZERO, dt / 4.0);
                }
            }
        }
    }

    #[test]
    fn takeoff_and_hold_altitude() {
        let mut l = Loop::new();
        let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0);
        l.run(target, 12.0);
        let pos = l.quad.state().position;
        assert!(!l.quad.is_crashed(), "crashed during takeoff");
        assert!(
            (pos.z - 5.0).abs() < 0.8,
            "altitude {} should be near 5",
            pos.z
        );
        assert!(pos.norm_xy() < 1.0, "horizontal drift {}", pos.norm_xy());
    }

    #[test]
    fn fly_to_waypoint() {
        let mut l = Loop::new();
        // Climb first.
        l.run(TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0), 8.0);
        // Cruise to a waypoint 30 m east.
        l.run(TargetState::hover_at(Vec3::new(30.0, 0.0, 5.0), 0.0), 20.0);
        let pos = l.quad.state().position;
        assert!(!l.quad.is_crashed());
        assert!(
            pos.distance_xy(Vec3::new(30.0, 0.0, 5.0)) < 1.5,
            "reached {pos} instead of waypoint"
        );
    }

    #[test]
    fn yaw_tracking() {
        let mut l = Loop::new();
        l.run(TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0), 8.0);
        l.run(TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 1.2), 6.0);
        let yaw = l.quad.state().attitude.z;
        assert!((yaw - 1.2).abs() < 0.15, "yaw {yaw} should track 1.2");
    }

    #[test]
    fn override_signal_is_flown() {
        let mut l = Loop::new();
        l.run(TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0), 8.0);
        // Force a pitch-forward override regardless of the hover target.
        let ovr = ActuatorSignal {
            roll: 0.0,
            pitch: 0.2,
            yaw_rate: 0.0,
            thrust: 0.52,
        };
        let dt = 0.01;
        for _ in 0..300 {
            let readings = l.suite.sample(l.quad.state(), dt);
            let est = l.est.update(&readings, dt);
            let (motors, _) = l.ctl.step(&est, &TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0), Some(ovr), dt);
            for _ in 0..4 {
                l.quad.step(motors, Vec3::ZERO, dt / 4.0);
            }
        }
        // The vehicle must have accelerated east despite the hover target.
        assert!(
            l.quad.state().velocity.x > 0.5,
            "override ignored: vx = {}",
            l.quad.state().velocity.x
        );
        // Telemetry separates flown vs PID signals.
        let t = l.ctl.telemetry();
        assert_eq!(t.flown_signal.pitch, 0.2);
        assert!(t.pid_signal.pitch < 0.1, "PID should be pitching back");
    }

    #[test]
    fn wind_disturbance_rejected() {
        let mut l = Loop::new();
        let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 6.0), 0.0);
        l.run(target, 8.0);
        // 20 km/h steady wind.
        let dt = 0.01;
        let wind = Vec3::new(20.0 / 3.6, 0.0, 0.0);
        for _ in 0..1500 {
            let readings = l.suite.sample(l.quad.state(), dt);
            let est = l.est.update(&readings, dt);
            let (motors, _) = l.ctl.step(&est, &target, None, dt);
            for _ in 0..4 {
                l.quad.step(motors, wind, dt / 4.0);
            }
        }
        let pos = l.quad.state().position;
        assert!(!l.quad.is_crashed());
        assert!(
            pos.norm_xy() < 2.0,
            "wind blew the vehicle {} m off target",
            pos.norm_xy()
        );
    }
}
