//! The PID primitive used by every loop of the cascaded controller.
//!
//! Besides the textbook proportional/integral/derivative terms, the
//! implementation carries the two behaviours the paper's Section III study
//! hinges on:
//!
//! - **integral accumulation under systematic error** — attacks inject
//!   errors systematically (not transiently), so the integral term keeps
//!   compensating, which is the over-compensation mechanism the paper
//!   measures (Figure 2c/2d);
//! - an **effective-gain telemetry** ([`Pid::effective_p`]) exposing the
//!   ratio of output to error, the quantity the paper plots as "P
//!   coefficient adjustment".

/// Configuration for one PID loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Symmetric clamp on the integral term's contribution (anti-windup).
    pub integral_limit: f64,
    /// Symmetric clamp on the total output.
    pub output_limit: f64,
    /// Low-pass coefficient for the derivative (0 = no filtering,
    /// 1 = frozen); typical 0.5.
    pub derivative_filter: f64,
}

impl PidConfig {
    /// A proportional-only configuration.
    pub fn p_only(kp: f64, output_limit: f64) -> Self {
        PidConfig {
            kp,
            ki: 0.0,
            kd: 0.0,
            integral_limit: 0.0,
            output_limit,
            derivative_filter: 0.0,
        }
    }

    /// Validates gain plausibility.
    ///
    /// # Panics
    ///
    /// Panics if limits are negative or the derivative filter is outside
    /// `[0, 1)`.
    pub fn validate(&self) {
        assert!(self.integral_limit >= 0.0, "integral limit must be >= 0");
        assert!(self.output_limit > 0.0, "output limit must be > 0");
        assert!(
            (0.0..1.0).contains(&self.derivative_filter),
            "derivative filter must be in [0, 1)"
        );
    }
}

impl Default for PidConfig {
    fn default() -> Self {
        PidConfig {
            kp: 1.0,
            ki: 0.0,
            kd: 0.0,
            integral_limit: 1.0,
            output_limit: 1.0,
            derivative_filter: 0.5,
        }
    }
}

/// A single PID loop with anti-windup and derivative filtering.
///
/// # Examples
///
/// ```
/// use pidpiper_control::pid::{Pid, PidConfig};
///
/// let mut pid = Pid::new(PidConfig { kp: 2.0, output_limit: 10.0, ..PidConfig::default() });
/// let out = pid.update(1.5, 0.01);
/// assert!((out - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
    last_derivative: f64,
    last_output: f64,
    last_effective_p: f64,
}

impl Pid {
    /// Creates a PID loop from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PidConfig::validate`].
    pub fn new(config: PidConfig) -> Self {
        config.validate();
        Pid {
            config,
            integral: 0.0,
            last_error: None,
            last_derivative: 0.0,
            last_output: 0.0,
            last_effective_p: config.kp,
        }
    }

    /// The loop configuration.
    #[inline]
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Advances the loop with the given error and time step, returning the
    /// control output.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0, "dt must be positive");
        let c = &self.config;

        self.integral += c.ki * error * dt;
        self.integral = self.integral.clamp(-c.integral_limit, c.integral_limit);

        let raw_derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        let f = c.derivative_filter;
        self.last_derivative = f * self.last_derivative + (1.0 - f) * raw_derivative;
        self.last_error = Some(error);

        let out = (c.kp * error + self.integral + c.kd * self.last_derivative)
            .clamp(-c.output_limit, c.output_limit);
        self.last_output = out;
        // Effective gain: how hard the controller is pushing per unit error.
        // This is the "P coefficient" telemetry of the paper's Figure 2c;
        // under a systematic attack the integral inflates it well past kp.
        // Tiny errors make the ratio meaningless, so the telemetry only
        // updates when the error is non-trivial, and is clamped to a
        // plottable range.
        if error.abs() > 0.05 {
            self.last_effective_p = (out / error).clamp(-20.0 * c.kp.abs() - 20.0, 20.0 * c.kp.abs() + 20.0);
        }
        out
    }

    /// The integral term's current accumulated value.
    #[inline]
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The most recent output.
    #[inline]
    pub fn last_output(&self) -> f64 {
        self.last_output
    }

    /// Effective proportional gain (output / error) at the last update —
    /// the paper's "P coefficient adjustment" telemetry (Figure 2c).
    #[inline]
    pub fn effective_p(&self) -> f64 {
        self.last_effective_p
    }

    /// Resets integral and derivative state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
        self.last_derivative = 0.0;
        self.last_output = 0.0;
        self.last_effective_p = self.config.kp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(kp: f64, ki: f64, kd: f64) -> Pid {
        Pid::new(PidConfig {
            kp,
            ki,
            kd,
            integral_limit: 5.0,
            output_limit: 100.0,
            derivative_filter: 0.0,
        })
    }

    #[test]
    fn proportional_term() {
        let mut p = pid(3.0, 0.0, 0.0);
        assert_eq!(p.update(2.0, 0.01), 6.0);
        assert_eq!(p.update(-1.0, 0.01), -3.0);
    }

    #[test]
    fn integral_accumulates_under_systematic_error() {
        let mut p = pid(0.0, 1.0, 0.0);
        let mut out = 0.0;
        for _ in 0..100 {
            out = p.update(1.0, 0.01);
        }
        assert!((out - 1.0).abs() < 1e-9, "integral of 1 over 1 s = 1, got {out}");
    }

    #[test]
    fn integral_clamped_by_anti_windup() {
        let mut p = Pid::new(PidConfig {
            kp: 0.0,
            ki: 10.0,
            kd: 0.0,
            integral_limit: 0.5,
            output_limit: 100.0,
            derivative_filter: 0.0,
        });
        for _ in 0..1000 {
            p.update(10.0, 0.01);
        }
        assert!(p.integral() <= 0.5 + 1e-12);
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut p = pid(0.0, 0.0, 1.0);
        p.update(0.0, 0.01);
        let out = p.update(0.1, 0.01); // de/dt = 10
        assert!((out - 10.0).abs() < 1e-9);
    }

    #[test]
    fn first_step_has_no_derivative_kick() {
        let mut p = pid(0.0, 0.0, 5.0);
        assert_eq!(p.update(100.0, 0.01), 0.0);
    }

    #[test]
    fn output_is_clamped() {
        let mut p = Pid::new(PidConfig {
            kp: 1000.0,
            output_limit: 2.0,
            ..PidConfig::default()
        });
        assert_eq!(p.update(10.0, 0.01), 2.0);
        assert_eq!(p.update(-10.0, 0.01), -2.0);
    }

    #[test]
    fn effective_p_inflates_under_persistent_error() {
        // The over-compensation mechanism: with ki > 0, a persistent error
        // drives the effective gain above kp (paper Fig. 2c).
        let mut p = pid(4.0, 2.0, 0.0);
        p.update(0.2, 0.01);
        let early = p.effective_p();
        for _ in 0..500 {
            p.update(0.2, 0.01);
        }
        let late = p.effective_p();
        assert!((early - 4.0).abs() < 0.5, "early effective P {early}");
        assert!(late > 6.0, "late effective P {late} should inflate past kp");
    }

    #[test]
    fn reset_restores_initial_conditions() {
        let mut p = pid(1.0, 1.0, 1.0);
        for _ in 0..50 {
            p.update(3.0, 0.01);
        }
        p.reset();
        assert_eq!(p.integral(), 0.0);
        assert_eq!(p.last_output(), 0.0);
        assert_eq!(p.effective_p(), 1.0);
    }

    #[test]
    #[should_panic(expected = "output limit")]
    fn invalid_config_rejected() {
        let _ = Pid::new(PidConfig {
            output_limit: 0.0,
            ..PidConfig::default()
        });
    }
}
