//! The actuator-signal boundary between position and attitude control.
//!
//! This four-channel vector is the quantity `y(t)` of the paper: the output
//! of the position controller (target Euler angles, yaw rate and
//! normalized thrust) that the attitude controller consumes. PID-Piper's
//! ML model predicts it, the monitoring module compares the PID's and the
//! model's versions of it, and the recovery module substitutes the model's
//! version when an attack is detected.

use pidpiper_math::rad_to_deg;

/// The actuator signal `y(t)`: the position controller's output.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActuatorSignal {
    /// Target roll angle (rad).
    pub roll: f64,
    /// Target pitch angle (rad).
    pub pitch: f64,
    /// Target yaw rate (rad/s).
    pub yaw_rate: f64,
    /// Normalized collective thrust in `[0, 1]`.
    pub thrust: f64,
}

impl ActuatorSignal {
    /// Number of channels when flattened.
    pub const DIM: usize = 4;

    /// Flattens into `[roll, pitch, yaw_rate, thrust]`.
    pub fn to_array(self) -> [f64; 4] {
        [self.roll, self.pitch, self.yaw_rate, self.thrust]
    }

    /// Rebuilds from `[roll, pitch, yaw_rate, thrust]`.
    pub fn from_array(a: [f64; 4]) -> Self {
        ActuatorSignal {
            roll: a[0],
            pitch: a[1],
            yaw_rate: a[2],
            thrust: a[3],
        }
    }

    /// Per-axis monitoring residual against another signal, in the units
    /// the paper's thresholds use: degrees for roll/pitch, degrees/second
    /// for the yaw-rate channel.
    pub fn residual_deg(&self, other: &ActuatorSignal) -> [f64; 3] {
        [
            rad_to_deg((self.roll - other.roll).abs()),
            rad_to_deg((self.pitch - other.pitch).abs()),
            rad_to_deg((self.yaw_rate - other.yaw_rate).abs()),
        ]
    }

    /// Clamps every channel into physically meaningful ranges:
    /// angles to `±max_tilt` rad, thrust to `[0, 1]`, yaw rate to
    /// `±max_yaw_rate` rad/s.
    pub fn clamped(self, max_tilt: f64, max_yaw_rate: f64) -> ActuatorSignal {
        ActuatorSignal {
            roll: self.roll.clamp(-max_tilt, max_tilt),
            pitch: self.pitch.clamp(-max_tilt, max_tilt),
            yaw_rate: self.yaw_rate.clamp(-max_yaw_rate, max_yaw_rate),
            thrust: self.thrust.clamp(0.0, 1.0),
        }
    }

    /// True when every channel is finite.
    pub fn is_finite(&self) -> bool {
        self.roll.is_finite()
            && self.pitch.is_finite()
            && self.yaw_rate.is_finite()
            && self.thrust.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_round_trip() {
        let y = ActuatorSignal {
            roll: 0.1,
            pitch: -0.2,
            yaw_rate: 0.3,
            thrust: 0.55,
        };
        assert_eq!(ActuatorSignal::from_array(y.to_array()), y);
    }

    #[test]
    fn residual_is_absolute_degrees() {
        let a = ActuatorSignal {
            roll: 0.0,
            pitch: 0.0,
            yaw_rate: 0.0,
            thrust: 0.5,
        };
        let b = ActuatorSignal {
            roll: std::f64::consts::PI / 18.0, // 10 degrees
            pitch: -std::f64::consts::PI / 18.0,
            yaw_rate: 0.0,
            thrust: 0.9, // thrust excluded from the angular residual
        };
        let r = a.residual_deg(&b);
        assert!((r[0] - 10.0).abs() < 1e-9);
        assert!((r[1] - 10.0).abs() < 1e-9);
        assert_eq!(r[2], 0.0);
    }

    #[test]
    fn clamping() {
        let y = ActuatorSignal {
            roll: 1.0,
            pitch: -1.0,
            yaw_rate: 9.0,
            thrust: 1.7,
        };
        let c = y.clamped(0.5, 2.0);
        assert_eq!(c.roll, 0.5);
        assert_eq!(c.pitch, -0.5);
        assert_eq!(c.yaw_rate, 2.0);
        assert_eq!(c.thrust, 1.0);
    }

    #[test]
    fn finiteness() {
        let mut y = ActuatorSignal::default();
        assert!(y.is_finite());
        y.thrust = f64::NAN;
        assert!(!y.is_finite());
    }
}
