//! Position controller: target position → velocity → acceleration →
//! actuator signal (target Euler angles, yaw rate, thrust).
//!
//! This is the outer loop of the ArduPilot-style cascade in the paper's
//! Figure 1 and the stage whose output PID-Piper's ML model emulates.

use crate::actuator::ActuatorSignal;
use crate::pid::{Pid, PidConfig};
use pidpiper_math::{angles::angle_error, Vec3};
use pidpiper_sensors::EstimatedState;
use pidpiper_sim::quadcopter::GRAVITY;

/// The autonomous logic's target for the position controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TargetState {
    /// Target position (ENU metres).
    pub position: Vec3,
    /// Feed-forward velocity along the path (m/s, world frame).
    pub velocity_ff: Vec3,
    /// Target yaw (rad).
    pub yaw: f64,
    /// Whether the autonomous logic is in its landing descent; enables the
    /// stability-gated descent (a drifting vehicle must not be driven into
    /// the ground).
    pub landing: bool,
}

impl TargetState {
    /// A hover target at `position` holding yaw `yaw`.
    pub fn hover_at(position: Vec3, yaw: f64) -> Self {
        TargetState {
            position,
            velocity_ff: Vec3::ZERO,
            yaw,
            landing: false,
        }
    }

    /// Flattens to `[px, py, pz, yaw]` for the ML feature pipeline.
    pub fn to_array(self) -> [f64; 4] {
        [self.position.x, self.position.y, self.position.z, self.yaw]
    }
}

/// Gains for the position controller cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionGains {
    /// P gain: position error (m) → velocity setpoint (m/s).
    pub pos_p: f64,
    /// Maximum horizontal speed (m/s).
    pub max_speed_xy: f64,
    /// Maximum climb/descent speed (m/s).
    pub max_speed_z: f64,
    /// Velocity-loop PID (per horizontal axis), producing acceleration.
    pub vel_xy: PidConfig,
    /// Vertical velocity-loop PID, producing vertical acceleration.
    pub vel_z: PidConfig,
    /// Maximum commanded tilt (rad).
    pub max_tilt: f64,
    /// P gain: yaw error (rad) → yaw rate setpoint (rad/s).
    pub yaw_p: f64,
    /// Maximum yaw rate (rad/s).
    pub max_yaw_rate: f64,
    /// Vehicle mass (kg) for thrust normalization.
    pub mass: f64,
    /// Maximum total thrust (N) for thrust normalization.
    pub max_thrust: f64,
}

impl PositionGains {
    /// Reasonable gains for a quadcopter of the given mass and maximum
    /// thrust (N).
    pub fn for_quad(mass: f64, max_thrust: f64) -> Self {
        PositionGains {
            pos_p: 0.8,
            max_speed_xy: 5.0,
            max_speed_z: 2.0,
            vel_xy: PidConfig {
                kp: 1.4,
                ki: 0.35,
                kd: 0.12,
                integral_limit: 1.5,
                output_limit: 4.0,
                derivative_filter: 0.6,
            },
            vel_z: PidConfig {
                kp: 2.0,
                ki: 0.8,
                kd: 0.0,
                integral_limit: 2.0,
                output_limit: 4.0,
                derivative_filter: 0.6,
            },
            max_tilt: 0.38,
            yaw_p: 1.8,
            max_yaw_rate: 1.2,
            mass,
            max_thrust,
        }
    }
}

/// Per-step telemetry from the position controller, used by the paper's
/// Figure 2 study (position error, velocity/acceleration intermediates and
/// the effective P coefficient).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PositionTelemetry {
    /// Position error vector (m).
    pub position_error: Vec3,
    /// Velocity setpoint (m/s).
    pub velocity_setpoint: Vec3,
    /// Acceleration setpoint (m/s^2).
    pub acceleration_setpoint: Vec3,
    /// Effective P gain of the x-velocity loop (paper Fig. 2c).
    pub effective_p: f64,
}

/// The outer-loop position controller.
///
/// # Examples
///
/// ```
/// use pidpiper_control::position::{PositionController, PositionGains, TargetState};
/// use pidpiper_sensors::EstimatedState;
/// use pidpiper_math::Vec3;
///
/// let mut pc = PositionController::new(PositionGains::for_quad(1.5, 4.0 * 7.35));
/// let est = EstimatedState::default();
/// let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 0.0);
/// let y = pc.update(&est, &target, 0.01);
/// // Below the target: must command climb-capable thrust.
/// assert!(y.thrust > 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct PositionController {
    gains: PositionGains,
    vel_x: Pid,
    vel_y: Pid,
    vel_z: Pid,
    telemetry: PositionTelemetry,
}

impl PositionController {
    /// Creates a controller from gains.
    ///
    /// # Panics
    ///
    /// Panics if any embedded PID configuration is invalid.
    pub fn new(gains: PositionGains) -> Self {
        PositionController {
            vel_x: Pid::new(gains.vel_xy),
            vel_y: Pid::new(gains.vel_xy),
            vel_z: Pid::new(gains.vel_z),
            gains,
            telemetry: PositionTelemetry::default(),
        }
    }

    /// The configured gains.
    pub fn gains(&self) -> &PositionGains {
        &self.gains
    }

    /// Most recent intermediate telemetry.
    pub fn telemetry(&self) -> &PositionTelemetry {
        &self.telemetry
    }

    /// Resets all integrators.
    pub fn reset(&mut self) {
        self.vel_x.reset();
        self.vel_y.reset();
        self.vel_z.reset();
    }

    /// Runs one control step: estimated state + target → actuator signal.
    pub fn update(
        &mut self,
        est: &EstimatedState,
        target: &TargetState,
        dt: f64,
    ) -> ActuatorSignal {
        let g = &self.gains;

        // Position error → velocity setpoint (P with speed limits).
        let pos_err = target.position - est.position;
        let mut vel_sp = pos_err * g.pos_p + target.velocity_ff;
        let vxy = Vec3::new(vel_sp.x, vel_sp.y, 0.0).clamp_norm(g.max_speed_xy);
        vel_sp.x = vxy.x;
        vel_sp.y = vxy.y;
        vel_sp.z = vel_sp.z.clamp(-g.max_speed_z, g.max_speed_z);
        // Landing flare: near the ground, descend gently (standard
        // autopilot behaviour; also keeps touchdown within the airframe's
        // sink-rate limit even when recovering from an attack-induced
        // wobble).
        if est.position.z < 1.8 {
            vel_sp.z = vel_sp.z.max(-0.6);
        }
        // Stability-gated descent: while landing, pause the descent until
        // lateral motion is arrested — touching down while skidding
        // destroys the airframe. Standard autopilot behaviour, applied
        // identically under every defense.
        if target.landing && est.velocity.norm_xy() > 0.6 {
            vel_sp.z = vel_sp.z.max(0.0);
        }

        // Velocity error → acceleration setpoint (PID per axis).
        let accel_sp = Vec3::new(
            self.vel_x.update(vel_sp.x - est.velocity.x, dt),
            self.vel_y.update(vel_sp.y - est.velocity.y, dt),
            self.vel_z.update(vel_sp.z - est.velocity.z, dt),
        );

        // Acceleration setpoint → target attitude. In the yaw frame:
        //   pitch = (cos(yaw)*ax + sin(yaw)*ay) / g
        //   roll  = (sin(yaw)*ax - cos(yaw)*ay) / g
        let yaw = est.attitude.z;
        let (sy, cy) = yaw.sin_cos();
        let pitch = ((cy * accel_sp.x + sy * accel_sp.y) / GRAVITY)
            .clamp(-g.max_tilt, g.max_tilt);
        let roll = ((sy * accel_sp.x - cy * accel_sp.y) / GRAVITY)
            .clamp(-g.max_tilt, g.max_tilt);

        // Vertical acceleration → normalized thrust, compensated for tilt.
        let tilt_comp = (roll.cos() * pitch.cos()).max(0.5);
        let thrust_n = g.mass * (GRAVITY + accel_sp.z) / tilt_comp;
        let thrust = (thrust_n / g.max_thrust).clamp(0.0, 1.0);

        // Yaw error → yaw rate setpoint.
        let yaw_rate = (g.yaw_p * angle_error(target.yaw, yaw))
            .clamp(-g.max_yaw_rate, g.max_yaw_rate);

        self.telemetry = PositionTelemetry {
            position_error: pos_err,
            velocity_setpoint: vel_sp,
            acceleration_setpoint: accel_sp,
            effective_p: self.vel_x.effective_p(),
        };

        ActuatorSignal {
            roll,
            pitch,
            yaw_rate,
            thrust,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> PositionController {
        // 1.5 kg quad, thrust-to-weight 2 => max thrust = 2 * m * g.
        PositionController::new(PositionGains::for_quad(1.5, 2.0 * 1.5 * GRAVITY))
    }

    fn hover_estimate(pos: Vec3) -> EstimatedState {
        EstimatedState {
            position: pos,
            ..Default::default()
        }
    }

    #[test]
    fn hover_at_target_commands_hover_thrust() {
        let mut pc = controller();
        let est = hover_estimate(Vec3::new(0.0, 0.0, 10.0));
        let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 10.0), 0.0);
        let y = pc.update(&est, &target, 0.01);
        // Hover thrust for T/W = 2 is 0.5 of maximum.
        assert!((y.thrust - 0.5).abs() < 0.05, "thrust {}", y.thrust);
        assert!(y.roll.abs() < 1e-6 && y.pitch.abs() < 1e-6);
        assert!(y.yaw_rate.abs() < 1e-9);
    }

    #[test]
    fn target_ahead_commands_positive_pitch() {
        let mut pc = controller();
        let est = hover_estimate(Vec3::new(0.0, 0.0, 10.0));
        let target = TargetState::hover_at(Vec3::new(20.0, 0.0, 10.0), 0.0);
        let y = pc.update(&est, &target, 0.01);
        assert!(y.pitch > 0.05, "pitch {} should tip towards +x", y.pitch);
    }

    #[test]
    fn target_left_commands_negative_roll() {
        // +y target => accelerate +y => roll negative in this convention.
        let mut pc = controller();
        let est = hover_estimate(Vec3::new(0.0, 0.0, 10.0));
        let target = TargetState::hover_at(Vec3::new(0.0, 20.0, 10.0), 0.0);
        let y = pc.update(&est, &target, 0.01);
        assert!(y.roll < -0.05, "roll {} should tip towards +y", y.roll);
    }

    #[test]
    fn tilt_respects_limit() {
        let mut pc = controller();
        let est = hover_estimate(Vec3::ZERO);
        let target = TargetState::hover_at(Vec3::new(1000.0, 1000.0, 0.0), 0.0);
        for _ in 0..200 {
            let y = pc.update(&est, &target, 0.01);
            assert!(y.roll.abs() <= pc.gains().max_tilt + 1e-12);
            assert!(y.pitch.abs() <= pc.gains().max_tilt + 1e-12);
        }
    }

    #[test]
    fn yaw_error_produces_yaw_rate() {
        let mut pc = controller();
        let est = hover_estimate(Vec3::new(0.0, 0.0, 5.0));
        let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 5.0), 1.0);
        let y = pc.update(&est, &target, 0.01);
        assert!(y.yaw_rate > 0.5);
        assert!(y.yaw_rate <= pc.gains().max_yaw_rate);
    }

    #[test]
    fn yaw_frame_mapping_rotates_with_heading() {
        // Facing +y (yaw 90 deg), a +x target needs a roll command, not pitch.
        let mut pc = controller();
        let mut est = hover_estimate(Vec3::new(0.0, 0.0, 10.0));
        est.attitude.z = std::f64::consts::FRAC_PI_2;
        let target = TargetState::hover_at(Vec3::new(20.0, 0.0, 10.0), est.attitude.z);
        let y = pc.update(&est, &target, 0.01);
        assert!(y.roll > 0.05, "roll {}", y.roll);
        assert!(y.pitch.abs() < 0.02, "pitch {}", y.pitch);
    }

    #[test]
    fn spoofed_position_inflates_effective_p() {
        // Reproduces the Fig. 2c mechanism: a systematic position error
        // (as injected by GPS spoofing) keeps the velocity loop's integral
        // charging, inflating the effective gain.
        let mut pc = controller();
        let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 10.0), 0.0);
        // Vehicle believes it is displaced 0.5 m and never catches up
        // (systematic, attack-like error).
        let est = hover_estimate(Vec3::new(0.5, 0.0, 10.0));
        pc.update(&est, &target, 0.01);
        let early = pc.telemetry().effective_p;
        for _ in 0..800 {
            pc.update(&est, &target, 0.01);
        }
        let late = pc.telemetry().effective_p;
        assert!(
            late > early + 0.5,
            "effective P should inflate: early {early}, late {late}"
        );
    }

    #[test]
    fn landing_flare_limits_descent_near_ground() {
        let mut pc = controller();
        let mut est = hover_estimate(Vec3::new(0.0, 0.0, 1.0));
        est.velocity = Vec3::new(0.0, 0.0, -2.0);
        let mut target = TargetState::hover_at(Vec3::new(0.0, 0.0, 0.0), 0.0);
        target.landing = true;
        // The flare caps the descent setpoint at -0.6 m/s below 1.8 m, so
        // with the vehicle sinking at 2 m/s the controller must push up.
        let y = pc.update(&est, &target, 0.01);
        assert!(y.thrust > 0.5, "flare should brake the descent: thrust {}", y.thrust);
    }

    #[test]
    fn landing_pauses_descent_while_skidding() {
        let mut pc = controller();
        let mut est = hover_estimate(Vec3::new(0.0, 0.0, 3.0));
        est.velocity = Vec3::new(1.5, 0.0, 0.0); // lateral skid
        let mut target = TargetState::hover_at(Vec3::new(0.0, 0.0, 0.0), 0.0);
        target.landing = true;
        for _ in 0..50 {
            pc.update(&est, &target, 0.01);
        }
        let vel_sp_z = pc.telemetry().velocity_setpoint.z;
        assert!(
            vel_sp_z >= 0.0,
            "descent must pause while lateral speed is high: vz_sp {vel_sp_z}"
        );
    }

    #[test]
    fn reset_clears_integrators() {
        let mut pc = controller();
        let est = hover_estimate(Vec3::new(5.0, 0.0, 10.0));
        let target = TargetState::hover_at(Vec3::new(0.0, 0.0, 10.0), 0.0);
        for _ in 0..100 {
            pc.update(&est, &target, 0.01);
        }
        pc.reset();
        let est0 = hover_estimate(Vec3::new(0.0, 0.0, 10.0));
        let y = pc.update(&est0, &TargetState::hover_at(Vec3::new(0.0, 0.0, 10.0), 0.0), 0.01);
        assert!(y.roll.abs() < 1e-6 && y.pitch.abs() < 1e-6);
    }
}
