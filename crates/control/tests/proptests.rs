//! Property-based tests for the control stack.

use pidpiper_control::{ActuatorSignal, Mixer, Pid, PidConfig};
use pidpiper_math::Vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pid_output_always_within_limit(
        kp in 0.0..50.0f64,
        ki in 0.0..20.0f64,
        kd in 0.0..5.0f64,
        limit in 0.1..100.0f64,
        errors in prop::collection::vec(-1e3..1e3f64, 1..100),
    ) {
        let mut pid = Pid::new(PidConfig {
            kp,
            ki,
            kd,
            integral_limit: 10.0,
            output_limit: limit,
            derivative_filter: 0.5,
        });
        for e in errors {
            let out = pid.update(e, 0.01);
            prop_assert!(out.abs() <= limit + 1e-12);
            prop_assert!(out.is_finite());
        }
    }

    #[test]
    fn pid_integral_respects_anti_windup(
        ki in 0.01..20.0f64,
        i_limit in 0.0..5.0f64,
        errors in prop::collection::vec(-100.0..100.0f64, 1..200),
    ) {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki,
            kd: 0.0,
            integral_limit: i_limit,
            output_limit: 1e6,
            derivative_filter: 0.0,
        });
        for e in errors {
            pid.update(e, 0.01);
            prop_assert!(pid.integral().abs() <= i_limit + 1e-12);
        }
    }

    #[test]
    fn mixer_commands_always_unit_range(
        thrust in -2.0..3.0f64,
        tx in -5.0..5.0f64,
        ty in -5.0..5.0f64,
        tz in -1.0..1.0f64,
    ) {
        let mixer = Mixer::new(0.18, 0.016, 7.36);
        for c in mixer.mix(thrust, Vec3::new(tx, ty, tz)) {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn mixer_pure_thrust_is_symmetric(thrust in 0.0..1.0f64) {
        let mixer = Mixer::new(0.18, 0.016, 7.36);
        let cmds = mixer.mix(thrust, Vec3::ZERO);
        for w in cmds.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn actuator_signal_clamp_is_idempotent(
        roll in -2.0..2.0f64,
        pitch in -2.0..2.0f64,
        yaw_rate in -5.0..5.0f64,
        thrust in -1.0..2.0f64,
        max_tilt in 0.01..1.0f64,
        max_yaw in 0.01..3.0f64,
    ) {
        let y = ActuatorSignal { roll, pitch, yaw_rate, thrust };
        let once = y.clamped(max_tilt, max_yaw);
        let twice = once.clamped(max_tilt, max_yaw);
        prop_assert_eq!(once, twice);
        prop_assert!(once.roll.abs() <= max_tilt);
        prop_assert!(once.pitch.abs() <= max_tilt);
        prop_assert!(once.yaw_rate.abs() <= max_yaw);
        prop_assert!((0.0..=1.0).contains(&once.thrust));
    }

    #[test]
    fn residual_deg_symmetric_and_nonnegative(
        a_roll in -1.0..1.0f64, a_pitch in -1.0..1.0f64, a_yaw in -2.0..2.0f64,
        b_roll in -1.0..1.0f64, b_pitch in -1.0..1.0f64, b_yaw in -2.0..2.0f64,
    ) {
        let a = ActuatorSignal { roll: a_roll, pitch: a_pitch, yaw_rate: a_yaw, thrust: 0.5 };
        let b = ActuatorSignal { roll: b_roll, pitch: b_pitch, yaw_rate: b_yaw, thrust: 0.5 };
        let r_ab = a.residual_deg(&b);
        let r_ba = b.residual_deg(&a);
        for axis in 0..3 {
            prop_assert!(r_ab[axis] >= 0.0);
            prop_assert!((r_ab[axis] - r_ba[axis]).abs() < 1e-9);
        }
        // Self-residual is exactly zero.
        prop_assert_eq!(a.residual_deg(&a), [0.0; 3]);
    }
}
