//! # pid-piper
//!
//! A from-scratch Rust reproduction of *“PID-Piper: Recovering Robotic
//! Vehicles from Physical Attacks”* (Dash, Li, Chen, Karimibiuki,
//! Pattabiraman — DSN 2021): automated recovery of robotic vehicles (RVs)
//! from GPS-spoofing and IMU-tampering attacks, using a machine-learned
//! feed-forward controller (FFC) that runs in tandem with the vehicle's
//! PID controller.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`math`] — linear algebra, VIF, DTW, CUSUM primitives;
//! - [`sim`] — 6-DOF quadcopter and rover simulators with wind and the six
//!   subject-RV profiles;
//! - [`sensors`] — GPS/IMU/baro/mag models and an EKF-style estimator;
//! - [`control`] — the ArduPilot-style cascaded PID control stack;
//! - [`attacks`] — overt and stealthy physical-attack injection;
//! - [`faults`] — deterministic benign fault injection (sensor dropouts,
//!   NaN bursts, actuator derating, control-task overruns);
//! - [`ml`] — a from-scratch LSTM with BPTT training (the paper's
//!   2×LSTM → sigmoid → 2×PReLU architecture);
//! - [`missions`] — mission plans, the closed-loop runner, metrics, and
//!   the resilient batch layer (panic isolation, watchdog budgets,
//!   deterministic retry and quarantine);
//! - [`core`] — PID-Piper itself: sensor sanitizer, FFC/FBC models,
//!   lag-tolerant CUSUM monitor, recovery module and training pipeline;
//! - [`baselines`] — the SRR, CI and Savior comparison techniques;
//! - [`fleet`] — the fleet-scale session engine: sharded deterministic
//!   scheduling of many concurrent vehicle monitoring sessions (the
//!   `pidpiper-fleet` binary; see `OPERATIONS.md`);
//! - [`campaigns`] — the adversarial attack-campaign engine: a
//!   declarative campaign DSL plus a seeded adaptive attacker that hunts
//!   for stealthy worst cases (the `pidpiper-campaign` binary).
//!
//! # Quickstart
//!
//! Train PID-Piper on attack-free missions, then fly a GPS-spoofed mission
//! under its protection:
//!
//! ```no_run
//! use pid_piper::prelude::*;
//!
//! // 1. Collect attack-free training missions.
//! let plans = MissionPlan::table1_missions(RvId::ArduCopter, 7, 0.5);
//! let traces: Vec<_> = plans
//!     .iter()
//!     .enumerate()
//!     .map(|(i, p)| {
//!         MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter).with_seed(i as u64))
//!             .run_clean(p)
//!             .trace
//!     })
//!     .collect();
//!
//! // 2. Train the FFC and calibrate thresholds.
//! let trained = Trainer::new(TrainerConfig::default()).train(&traces, false);
//! let mut defense = trained.pidpiper;
//!
//! // 3. Fly a mission under a 25 m GPS spoofing attack.
//! let attack = AttackPreset::GpsOvert.instantiate(8.0, (0.0, 0.0));
//! let result = MissionRunner::new(RunnerConfig::for_rv(RvId::ArduCopter))
//!     .run(
//!         &MissionPlan::straight_line(50.0, 5.0),
//!         &mut defense,
//!         vec![MissionAttack::Scheduled(attack)],
//!     );
//! assert!(result.outcome.is_success());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench` for the harness that regenerates every table and figure
//! of the paper's evaluation.

#![deny(missing_docs)]

pub use pidpiper_attacks as attacks;
pub use pidpiper_baselines as baselines;
pub use pidpiper_campaigns as campaigns;
pub use pidpiper_control as control;
pub use pidpiper_core as core;
pub use pidpiper_faults as faults;
pub use pidpiper_fleet as fleet;
pub use pidpiper_math as math;
pub use pidpiper_missions as missions;
pub use pidpiper_ml as ml;
pub use pidpiper_sensors as sensors;
pub use pidpiper_sim as sim;

/// The most commonly used types, for glob import in examples and tests.
pub mod prelude {
    pub use pidpiper_attacks::{
        Attack, AttackKind, AttackPreset, Envelope, EnvelopeAttack, Schedule, StealthyAttack,
    };
    pub use pidpiper_baselines::{CiDefense, SaviorDefense, SrrDefense};
    pub use pidpiper_campaigns::{Campaign, CampaignError, CompiledCampaign, SearchOutcome};
    pub use pidpiper_control::{ActuatorSignal, TargetState};
    pub use pidpiper_core::{
        load_deployment, save_deployment, ArtifactError, ArtifactIntegrity, FfcModel, PidPiper,
        PidPiperConfig, SensorSanitizer, Trainer, TrainerConfig,
    };
    pub use pidpiper_faults::{Fault, FaultInjector, FaultKind, FaultSchedule, SensorChannel};
    pub use pidpiper_fleet::{FleetConfig, FleetEngine, SessionSpec};
    pub use pidpiper_math::Vec3;
    pub use pidpiper_missions::{
        configured_jobs, BatchOutcome, Defense, HealthState, MissionAttack, MissionBudget,
        MissionError, MissionOutcome, MissionPlan, MissionResult, MissionRunner, MissionSpec,
        NoDefense, QuarantinedMission, ResiliencePolicy, RetryPolicy, RetryRecord, RunnerConfig,
    };
    pub use pidpiper_sensors::{
        EstimatedState, Estimator, GuardVerdict, ReadingsGuard, SensorReadings,
    };
    pub use pidpiper_sim::{Quadcopter, Rover, RvId, VehicleProfile, Wind, WindConfig};
}
