//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::num::f64::NORMAL`,
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are *not* shrunk (the failing
//! inputs are reported as-is), and the RNG stream is this workspace's
//! deterministic xoshiro generator, so each test body sees a fixed,
//! reproducible input sequence.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a test case.
pub type TestRng = StdRng;

/// A failed property inside a test case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test (default 256).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in samples values directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy combinators, mirroring proptest's `prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec`s with sizes drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Generates vectors whose length is uniform in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start + 1 >= self.size.end {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            use crate::{Strategy, TestRng};
            use rand::Rng;

            /// Strategy yielding finite, normal (non-subnormal, non-zero)
            /// `f64` values of both signs across a wide magnitude range.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalF64;

            /// Finite normal `f64`s (upstream `prop::num::f64::NORMAL`).
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;

                fn sample(&self, rng: &mut TestRng) -> f64 {
                    // Magnitude log-uniform in [1e-6, 1e6]: plenty of range
                    // without subnormals, zeros, infinities or NaNs.
                    let exp = rng.gen_range(-6.0..6.0f64);
                    let mag = 10f64.powf(exp);
                    if rng.gen_bool(0.5) {
                        mag
                    } else {
                        -mag
                    }
                }
            }
        }
    }
}

/// Drives one `#[test]` function generated by [`proptest!`].
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `case` once per configured case with a deterministic,
    /// per-case-seeded RNG; panics (failing the test) on the first error.
    pub fn run<F>(&mut self, name: &str, case: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for i in 0..self.config.cases {
            // Seed derived from the test name so sibling tests in one file
            // explore different streams, yet every run is reproducible.
            let name_hash = name
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            let mut rng = TestRng::seed_from_u64(name_hash ^ (i as u64).wrapping_mul(0x9e37_79b9));
            if let Err(e) = case(&mut rng) {
                panic!("proptest case {i} of {name} failed: {}", e.message);
            }
        }
    }
}

/// Asserts a condition inside a proptest body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?} ({} vs {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Asserts two expressions are not equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?} ({} vs {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Declares property-based tests.
///
/// Supports the subset of upstream syntax used in this workspace: an
/// optional leading `#![proptest_config(...)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)
        $(
            #[test]
            fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(stringify!($name), |proptest_rng| {
                    $(let $p = $crate::Strategy::sample(&($s), proptest_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -2.0..3.0f64, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn tuples_and_map(
            (a, b) in (0.0..1.0f64, 5.0..6.0f64),
            y in prop::num::f64::NORMAL.prop_map(|v| v.abs()),
        ) {
            prop_assert!(a < b);
            prop_assert!(y > 0.0 && y.is_finite());
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |_rng| {
            prop_assert!(false, "forced failure");
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
