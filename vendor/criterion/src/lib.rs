//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Good
//! enough to keep `cargo bench` runnable and to print per-bench latencies;
//! not a replacement for real criterion confidence intervals.

#![deny(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to get a stable per-iteration
    /// estimate (at least once; more when iterations are fast).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration round.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed();
        // Aim for ~50 ms of measurement, capped so slow benches run once.
        let target = Duration::from_millis(50);
        let reps = if one.is_zero() {
            1000
        } else {
            (target.as_nanos() / one.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let t1 = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.elapsed = t1.elapsed();
        self.iters = reps;
    }
}

/// Benchmark registry and configuration (stand-in for criterion's).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints its mean per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut best = Duration::MAX;
        let mut total_iters = 0u64;
        // A handful of samples, keeping the best (least-noise) estimate.
        let samples = self.sample_size.min(10);
        for _ in 0..samples {
            let mut b = Bencher {
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.iters > 0 {
                let per_iter = b.elapsed / b.iters as u32;
                if per_iter < best {
                    best = per_iter;
                }
                total_iters += b.iters;
            }
        }
        if total_iters == 0 {
            println!("bench {name}: no iterations recorded");
        } else {
            println!("bench {name}: {:.3} us/iter (best of {samples} samples)",
                best.as_secs_f64() * 1e6);
        }
    }
}

/// Declares a benchmark group: a function running each target against a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }
}
