//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the rayon API the workspace uses with `std::thread::scope`:
//!
//! - `par_iter()` / `into_par_iter()` on slices, `Vec`s and `Range<usize>`,
//!   followed by `.map(...).collect::<Vec<_>>()`;
//! - [`join`] for two-way fork/join;
//! - [`ThreadPoolBuilder`] → [`ThreadPool::install`] to bound worker count
//!   for a region (how `PIDPIPER_JOBS` is threaded through the harness).
//!
//! Work distribution is a shared atomic cursor (dynamic load balancing, so
//! heterogeneous mission lengths don't serialize on the slowest chunk) and
//! results are written to a pre-sized slot table indexed by input position,
//! so **output order always equals input order** regardless of completion
//! order — the property the deterministic experiment harness relies on.

#![deny(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations will use here: the
/// innermost [`ThreadPool::install`] override, else `RAYON_NUM_THREADS`,
/// else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(|t| t.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here; kept
/// for signature compatibility with rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a bounded worker count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Caps the pool at `n` workers (`0` = use the global default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical worker pool. Workers are spawned per parallel operation (via
/// `std::thread::scope`), so the pool only records the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count governing every parallel
    /// operation inside it (on this thread), restoring the previous limit
    /// afterwards.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.get());
        let n = self.num_threads.unwrap_or_else(current_num_threads);
        INSTALLED_THREADS.with(|t| t.set(Some(n)));
        let result = f();
        INSTALLED_THREADS.with(|t| t.set(prev));
        result
    }

    /// This pool's configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Runs `a` and `b` potentially in parallel, returning both results.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Order-preserving parallel map: the engine behind every parallel
/// iterator in this stand-in.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Input slots (taken once by whichever worker claims the index) and
    // output slots (written once, read back in input order). Mutexes keep
    // the bounds at `T: Send`/`R: Send` like upstream rayon; they are
    // uncontended because each index is claimed by exactly one worker.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("input slot claimed twice");
                let result = f(item);
                *slots[i].lock().expect("output slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("output slot poisoned")
                .expect("worker skipped an index")
        })
        .collect()
}

/// A materialized parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (lazily; runs on `collect`/`for_each`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapParIter<T, R, F> {
        MapParIter {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, &f);
    }
}

/// A parallel iterator with a pending `map` stage.
#[derive(Debug)]
pub struct MapParIter<T: Send, R: Send, F: Fn(T) -> R + Sync> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapParIter<T, R, F> {
    /// Executes the map in parallel and collects results **in input
    /// order** (never completion order).
    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_ordered_vec(parallel_map(self.items, self.f))
    }

    /// Executes the map in parallel, discarding results.
    pub fn for_each_drop(self) {
        let _ = parallel_map(self.items, self.f);
    }
}

/// Conversion from an ordered result vector (rayon's `FromParallelIterator`
/// analogue).
pub trait FromParallel<R> {
    /// Builds the collection from results in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;

    /// Creates a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// One-stop import mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallel, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let out: Vec<usize> = (0..257).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..257).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![3.0f64, 1.0, 4.0, 1.0, 5.0];
        let out: Vec<f64> = data.par_iter().map(|x| x + 1.0).collect();
        assert_eq!(out, vec![4.0, 2.0, 5.0, 2.0, 6.0]);
    }

    #[test]
    fn install_bounds_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            let out: Vec<usize> = (0..10).into_par_iter().map(|i| i).collect();
            assert_eq!(out.len(), 10);
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Heterogeneous per-item cost; order must still match input.
        let out: Vec<u64> = (0..64)
            .into_par_iter()
            .map(|i| {
                let mut acc = 0u64;
                for k in 0..(i as u64 % 7) * 10_000 {
                    acc = acc.wrapping_add(k);
                }
                std::hint::black_box(acc);
                i as u64
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
