//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the *small* subset of the rand 0.8 API the
//! workspace actually uses, with a deterministic xoshiro256++ generator
//! behind [`rngs::StdRng`]. The statistical stream differs from upstream
//! rand's ChaCha12-based `StdRng`, but every consumer in this workspace
//! seeds explicitly via [`SeedableRng::seed_from_u64`] and only relies on
//! determinism-given-seed, never on a specific stream.
//!
//! Supported surface: `rngs::StdRng`, `SeedableRng` (`from_seed`,
//! `seed_from_u64`), `Rng` (`gen_range` over half-open ranges, `gen_bool`,
//! `gen` for `f64`/`f32`/`bool` and integer types), and
//! `seq::SliceRandom` (`shuffle`, `choose`).

#![deny(missing_docs)]

/// Low-level generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (the conventional seeding scheme for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + (high - low) * unit
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo reduction; the bias is < 2^-64 for every span this
                // workspace uses and determinism is what actually matters.
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }

    /// Draws one value of a [`Standard`]-distributed type (`f64`/`f32` in
    /// `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one standard-distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_range(rng, 0.0, 1.0)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f32::sample_range(rng, 0.0, 1.0)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream rand's ChaCha12 `StdRng`; see the
    /// crate docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, deterministic given
        /// the generator state).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(2usize..9);
            assert!((2..9).contains(&n));
            let s = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
