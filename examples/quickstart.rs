//! Quickstart: train PID-Piper on attack-free missions, then fly a
//! GPS-spoofed delivery and watch it recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pid_piper::prelude::*;
use std::time::Instant;

fn main() {
    let rv = RvId::ArduCopter;
    println!("== PID-Piper quickstart on {rv} ==");

    // 1. Collect attack-free training missions (the paper's Table I mix,
    //    at half geometry for speed).
    let t0 = Instant::now();
    let plans = MissionPlan::table1_missions(rv, 7, 0.5);
    let traces: Vec<_> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(500 + i as u64))
                .run_clean(p)
                .trace
        })
        .collect();
    println!(
        "collected {} training missions in {:.1}s",
        traces.len(),
        t0.elapsed().as_secs_f64()
    );

    // 2. Train the FFC and calibrate detection thresholds (a single short
    //    stage keeps the example fast; the experiment harness trains with
    //    the full three-stage schedule).
    let t1 = Instant::now();
    let config = TrainerConfig {
        stages: [(10, 0.01), (6, 0.003), (0, 0.0)],
        ..TrainerConfig::default()
    };
    let trained = Trainer::new(config).train(&traces, false);
    println!(
        "trained in {:.0}s — {}; thresholds {:?}",
        t1.elapsed().as_secs_f64(),
        trained.report,
        trained.thresholds
    );
    let mut defense = trained.pidpiper;

    // 3. Fly a 50 m mission under an overt GPS spoofing attack (25 m bias
    //    in 4 s bursts), with and without PID-Piper.
    let plan = MissionPlan::straight_line(50.0, 5.0);
    let attack = || MissionAttack::Scheduled(AttackPreset::GpsOvert.instantiate(8.0, (0.0, 0.0)));

    let unprotected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(3))
        .run(&plan, &mut NoDefense::new(), vec![attack()]);
    println!(
        "\nwithout PID-Piper: {} (deviation {:.1} m)",
        unprotected.outcome, unprotected.final_deviation
    );

    let protected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(3))
        .run(&plan, &mut defense, vec![attack()]);
    println!(
        "with    PID-Piper: {} (deviation {:.1} m, {} recovery activation(s), {:.1} s in recovery)",
        protected.outcome,
        protected.final_deviation,
        protected.recovery_activations,
        protected.recovery_steps as f64 * 0.01,
    );

    assert!(
        protected.final_deviation < unprotected.final_deviation,
        "recovery should reduce the deviation"
    );
    println!("\nPID-Piper detected the attack and flew the mission to completion.");
}
