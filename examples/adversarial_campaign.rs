//! Adversarial campaign end-to-end: write a campaign file, validate it,
//! lower it onto the mission runner, and let the seeded adaptive attacker
//! hunt for the stealthy worst case against a (deliberately naive)
//! defense.
//!
//! The campaign DSL describes a two-phase program — a slow-ramp GPS drift
//! stacked with a duty-cycled gyro wobble — plus the parameter space the
//! attacker may search. The search is a pure function of
//! `(campaign, seed)`: run this example twice and every number, including
//! the winning parameter vector's fingerprint, is identical.
//!
//! Run with: `cargo run --release --example adversarial_campaign`
//! (`PIDPIPER_JOBS` sets the worker pool; results never depend on it.)

use pid_piper::campaigns::{search_with_jobs, Campaign, CompiledCampaign};
use pid_piper::missions::{Defense, NoDefense, StrategyKind};

const CAMPAIGN: &str = "\
campaign v1
name example-stealth-drift
vehicle arducopter
mission straight 60 5
seed 4242
stealth-margin 0.95
search generations 3 lambda 4

# Phase 1: GPS drift eased in over a ramp-hold-release envelope so the
# bias never steps sharply enough to spike a CUSUM monitor.
phase drift gps 0 8 0 start 6 envelope 15 40 5

# Phase 2: a small duty-cycled gyro wobble stacked on top.
phase wobble gyro 0.005 0 0 start 18 duty 2 8

# A benign GPS blackout rides along mid-mission.
fault blackout gps-dropout window 25 25.5

# What the adaptive attacker may tune, and within which bounds.
param drift.bias.y 2 20
param drift.envelope.ramp 8 30
param wobble.bias.x 0 0.01
";

fn main() {
    // 1. Parse and validate (this is what `pidpiper-campaign check` does).
    let campaign = match Campaign::from_text(CAMPAIGN) {
        Ok(c) => c,
        Err(err) => {
            eprintln!("{}", err.at("<embedded>"));
            std::process::exit(2);
        }
    };
    println!(
        "campaign `{}`: {} phases, {} faults, {} searchable dims",
        campaign.name,
        campaign.phases.len(),
        campaign.faults.len(),
        campaign.dimensions()
    );

    // 2. Lower the declared operating point and inspect the program.
    let compiled: CompiledCampaign = campaign.compile_default().expect("campaign compiles");
    println!(
        "lowered onto {} MissionAttack(s) + {} Fault(s) for {}",
        compiled.attacks.len(),
        compiled.faults.len(),
        compiled.rv.name()
    );

    // 3. Hunt for the stealthy worst case. NoDefense never flags anything,
    //    so every candidate is "stealthy" and the attacker purely
    //    maximizes mission deviation — swap in a trained PidPiper (see
    //    `pidpiper-campaign run`) to watch the stealth gate bite.
    let outcome = search_with_jobs(2, &campaign, StrategyKind::Algorithm1, |_| {
        Box::new(NoDefense::new()) as Box<dyn Defense + Send>
    })
    .expect("search runs");

    println!(
        "\nsearch: {} evaluations, {} rejected by the stealth gate",
        outcome.evaluations, outcome.rejected_stealth
    );
    println!(
        "winner: max deviation {:.2} m (peak statistic {:.3}, stealthy: {})",
        outcome.best.max_path_deviation, outcome.best.peak_statistic, outcome.winner_stealthy
    );
    for (decl, v) in campaign.params.iter().zip(&outcome.best_params) {
        println!("  {} = {v:.4}", decl.target());
    }
    println!(
        "replay: params fingerprint {:016x}, trace fingerprint {:016x}",
        outcome.params_fingerprint, outcome.best.trace_fingerprint
    );

    // 4. The same campaign staggers across a fleet: phase-shifted variants
    //    keep one template from tripping every monitor on the same tick.
    for (id, offset) in [(0u64, 0.0), (1, 2.5), (2, 5.0)] {
        let variant = compiled.shifted(offset);
        let fault = variant.fleet_fault_schedule().expect("fault declared");
        println!(
            "fleet session {id}: blackout active at t = {}",
            if fault.is_active(25.2 + offset) {
                format!("{:.1} s", 25.2 + offset)
            } else {
                "never".to_string()
            }
        );
    }
}
