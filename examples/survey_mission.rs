//! Agricultural survey drone under acoustic gyroscope injection.
//!
//! A polygonal survey pattern (the paper's PP mission family) flown by the
//! toy-class Sky-viper profile while an attacker injects gyroscope bias in
//! bursts — the paper's Attack-1. Without protection the drone is blown
//! off its pattern or crashes; with PID-Piper the noise model strips the
//! bias, the monitor detects the PID's over-compensation and the FFC flies
//! the pattern to completion.
//!
//! ```sh
//! cargo run --release --example survey_mission
//! ```

use pid_piper::prelude::*;

fn main() {
    let rv = RvId::SkyViper;
    println!("== Survey mission under gyroscope attack ({rv}) ==");

    let plans = MissionPlan::table1_missions(rv, 7, 0.5);
    let traces: Vec<_> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(500 + i as u64))
                .run_clean(p)
                .trace
        })
        .collect();
    let config = TrainerConfig {
        stages: [(10, 0.01), (6, 0.003), (0, 0.0)],
        ..TrainerConfig::default()
    };
    let trained = Trainer::new(config).train(&traces, false);
    let mut defense = trained.pidpiper;
    println!("trained: {}", trained.report);

    // A square survey pattern with the gyro attack bursting from t = 12 s.
    let plan = MissionPlan::polygon(4, 14.0, 5.0);
    let attack = || MissionAttack::Scheduled(AttackPreset::GyroOvert.instantiate(12.0, (0.0, 0.0)));

    let unprotected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(4))
        .run(&plan, &mut NoDefense::new(), vec![attack()]);
    println!(
        "\nwithout PID-Piper: {} (deviation {:.1} m)",
        unprotected.outcome, unprotected.final_deviation
    );

    let protected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(4))
        .run(&plan, &mut defense, vec![attack()]);
    println!(
        "with    PID-Piper: {} (deviation {:.1} m, {} recovery activation(s))",
        protected.outcome, protected.final_deviation, protected.recovery_activations
    );

    // Show the roll channel during the first burst: PID over-compensates,
    // the flown (FFC) signal stays calm.
    println!("\nroll command during the first attack burst (degrees):");
    println!("      t    PID      flown");
    for r in protected
        .trace
        .records()
        .iter()
        .filter(|r| r.attack_active)
        .step_by(40)
        .take(10)
    {
        println!(
            "  {:5.1}  {:7.2}  {:7.2}",
            r.t,
            r.pid_signal.roll.to_degrees(),
            r.flown_signal.roll.to_degrees()
        );
    }
    assert!(protected.recovery_activations > 0, "attack must be detected");
}
