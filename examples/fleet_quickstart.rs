//! Fleet quickstart: monitor a thousand vehicles from one process.
//!
//! Builds a [`FleetEngine`] around a synthetic FFC, admits 1 000 sessions
//! (a slice of them under a phase-shifted GPS-spoof-shaped fault), runs
//! 200 fleet ticks, and prints the health roll-up — then proves the
//! determinism contract by re-running the same fleet with a different
//! worker count and comparing every per-session fingerprint.
//!
//! Run with: `cargo run --release --example fleet_quickstart`
//! (`PIDPIPER_JOBS` sets the worker pool; results never depend on it).

use pid_piper::fleet::{FleetConfig, FleetEngine, SessionSpec};
use pid_piper::prelude::FaultSchedule;

fn build_fleet(workers: usize) -> FleetEngine {
    let config = FleetConfig {
        shards: 16,
        workers,
        shard_capacity: 64,
        pending_capacity: 8,
        ..FleetConfig::default()
    };
    let mut engine = FleetEngine::with_synthetic_model(config, 2021);
    let spoof = FaultSchedule::Intermittent {
        start: 0.1,
        on: 0.5,
        off: 1.5,
    };
    for id in 0..1_000u64 {
        let mut spec = SessionSpec::new(id, id ^ 0xD5);
        if id % 10 == 0 {
            // Phase-shift one template so the fleet doesn't trip in lockstep.
            spec = spec.with_fault(spoof.shifted(0.02 * (id % 37) as f64));
        }
        if let Err(rejected) = engine.submit(spec) {
            eprintln!("session {id} rejected: {rejected}");
        }
    }
    engine
}

fn main() {
    let mut fleet = build_fleet(4);
    let last = fleet.run_ticks(200);
    println!(
        "{} sessions x {} ticks: {} in recovery, {} degraded, {} tripped ticks, {} quarantined",
        fleet.resident_sessions(),
        fleet.ticks(),
        last.in_recovery,
        last.degraded,
        last.tripped,
        fleet.stats().retired,
    );
    println!(
        "per-session resident cost: {} bytes (~{} MB for 100k sessions)",
        fleet.bytes_per_session(),
        fleet.bytes_per_session() * 100_000 / (1024 * 1024),
    );

    // The determinism contract: worker count changes wall-clock, never
    // results. Same specs, 1 worker vs 4 — every fingerprint identical.
    let mut serial = build_fleet(1);
    serial.run_ticks(200);
    assert_eq!(
        serial.session_fingerprints(),
        fleet.session_fingerprints(),
        "fleet ticks must be bit-identical for any worker count"
    );
    println!("determinism check: 1-worker and 4-worker fleets agree bit-for-bit");
}
