//! Warehouse rover on a waypoint route under GPS spoofing.
//!
//! Ground rovers control only the Z-axis rotation, so PID-Piper monitors
//! the yaw channel alone (the rover rows of the paper's Table I). This
//! example drives the Aion R1 profile through a multi-waypoint route while
//! a spoofer shifts its GPS fix, and shows the detection and the bounded
//! deviation.
//!
//! ```sh
//! cargo run --release --example warehouse_rover
//! ```

use pid_piper::prelude::*;

fn main() {
    let rv = RvId::AionR1;
    println!("== Warehouse rover under GPS spoofing ({rv}) ==");

    let plans = MissionPlan::table1_missions(rv, 7, 0.5);
    let traces: Vec<_> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(500 + i as u64))
                .run_clean(p)
                .trace
        })
        .collect();
    let config = TrainerConfig {
        stages: [(10, 0.01), (6, 0.003), (0, 0.0)],
        ..TrainerConfig::default()
    };
    // Rovers monitor only the yaw channel (Table I).
    let trained = Trainer::new(config).train(&traces, true);
    let mut defense = trained.pidpiper;
    println!("trained: {}; thresholds {:?}", trained.report, trained.thresholds);

    let plan = MissionPlan::multi_waypoint(3, 30.0, 0.0, 5);
    let attack =
        || MissionAttack::Scheduled(AttackPreset::GpsOvert.instantiate(6.0, (0.0, 0.0)));

    let unprotected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(6))
        .run(&plan, &mut NoDefense::new(), vec![attack()]);
    println!(
        "\nwithout PID-Piper: {} (deviation {:.1} m)",
        unprotected.outcome, unprotected.final_deviation
    );

    let protected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(6))
        .run(&plan, &mut defense, vec![attack()]);
    println!(
        "with    PID-Piper: {} (deviation {:.1} m, {} recovery activation(s))",
        protected.outcome, protected.final_deviation, protected.recovery_activations
    );
    assert!(
        protected.final_deviation <= unprotected.final_deviation + 1.0,
        "protection should not worsen the outcome"
    );
}
