//! Last-mile delivery drone under a stealthy GPS attack.
//!
//! The paper's motivating workload: a delivery drone flying a straight
//! line to its drop-off point. A stealthy attacker who knows the detection
//! threshold slowly drags the GPS fix sideways, trying to divert the
//! package without ever tripping an alarm. PID-Piper's tight CUSUM
//! monitoring bounds the drag to a couple of metres.
//!
//! ```sh
//! cargo run --release --example delivery_drone
//! ```

use pid_piper::prelude::*;

fn main() {
    let rv = RvId::PixhawkDrone;
    println!("== Delivery mission under stealthy GPS attack ({rv}) ==");

    // Train on the standard attack-free mission set.
    let plans = MissionPlan::table1_missions(rv, 7, 0.5);
    let traces: Vec<_> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(500 + i as u64))
                .run_clean(p)
                .trace
        })
        .collect();
    let config = TrainerConfig {
        stages: [(10, 0.01), (6, 0.003), (0, 0.0)],
        ..TrainerConfig::default()
    };
    let trained = Trainer::new(config).train(&traces, false);
    let mut defense = trained.pidpiper;
    println!("trained: {}", trained.report);

    // A 200 m delivery leg. The stealthy attacker observes the monitor
    // level (the threat model allows snooping) and keeps its statistic at
    // 90 % of the threshold.
    let plan = MissionPlan::straight_line(200.0, 5.0);
    let stealthy = || MissionAttack::Stealthy(StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9));

    // Unprotected: the attacker ramps freely (capped at a plausibility
    // bound of 14 m — beyond that the diversion is obvious to an operator).
    let unprotected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(9))
        .run(
            &plan,
            &mut NoDefense::new(),
            vec![MissionAttack::Stealthy(
                StealthyAttack::gps_lateral(Vec3::unit_y(), 0.9).with_max_bias(14.0),
            )],
        );
    println!(
        "\nwithout PID-Piper: {} — dragged {:.1} m off the drop-off point",
        unprotected.outcome, unprotected.final_deviation
    );

    let protected = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(9))
        .run(&plan, &mut defense, vec![stealthy()]);
    println!(
        "with    PID-Piper: {} — deviation bounded at {:.1} m (max en-route {:.1} m)",
        protected.outcome, protected.final_deviation, protected.max_path_deviation
    );

    assert!(
        protected.final_deviation < unprotected.final_deviation,
        "PID-Piper should bound the stealthy drag"
    );
    println!("\nThe package arrives where it was addressed.");
}
