//! End-to-end training pipeline walkthrough: collect mission data, inspect
//! the feature engineering (VIF pruning and greedy selection), train the
//! FFC, calibrate thresholds, save the deployment to disk and reload it.
//!
//! ```sh
//! cargo run --release --example train_ffc
//! ```

use pid_piper::core::features::SensorPrimitives;
use pid_piper::math::{vif_all, Matrix};
use pid_piper::ml::greedy_forward_selection;
use pid_piper::prelude::*;

fn main() {
    let rv = RvId::ArduCopter;
    println!("== PID-Piper training pipeline on {rv} ==");

    // --- 1. Data collection (paper Section IV-B step 1).
    let plans = MissionPlan::table1_missions(rv, 7, 0.5);
    let traces: Vec<_> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(500 + i as u64))
                .run_clean(p)
                .trace
        })
        .collect();
    println!("1. collected {} attack-free mission profiles", traces.len());

    // --- 2a. Collinearity analysis (paper Section III): which sensor
    // channels inflate each other's variance?
    let rows: Vec<Vec<f64>> = traces[0]
        .records()
        .iter()
        .step_by(25)
        .map(|r| {
            let p = SensorPrimitives::collect(&r.est, &r.readings);
            // A representative sub-catalogue: position, velocity,
            // acceleration, attitude (x/y channels).
            vec![
                p.position[0],
                p.position[1],
                p.velocity[0],
                p.velocity[1],
                p.acceleration[0],
                p.acceleration[1],
                p.attitude[0],
                p.attitude[1],
            ]
        })
        .collect();
    let names = ["pos_x", "pos_y", "vel_x", "vel_y", "acc_x", "acc_y", "roll", "pitch"];
    let vifs = vif_all(&Matrix::from_rows(&rows));
    println!("2a. VIF analysis (collinear channels get pruned):");
    for (n, v) in names.iter().zip(&vifs) {
        println!("    {n:<6} VIF {v:8.1}");
    }

    // --- 2b. Greedy forward feature selection (paper Section IV-B step
    // 2), demonstrated on a toy evaluation: usefulness weights stand in
    // for validation error from retraining.
    let usefulness = [3.0, 2.5, 0.2, 0.2, 0.1, 0.1, 1.5, 1.5];
    let selected = greedy_forward_selection(names.len(), 0.02, |subset| {
        10.0 - subset.iter().map(|&i| usefulness[i]).sum::<f64>()
    });
    println!(
        "2b. greedy selection order: {:?}",
        selected.iter().map(|&i| names[i]).collect::<Vec<_>>()
    );

    // --- 3. Model training + threshold calibration (Sections IV-B/V).
    let config = TrainerConfig {
        stages: [(10, 0.01), (6, 0.003), (0, 0.0)],
        ..TrainerConfig::default()
    };
    let trained = Trainer::new(config).train(&traces, false);
    println!("3. {}", trained.report);
    println!("   calibrated thresholds: {:?}", trained.thresholds);
    println!("   per-axis drifts: {:?}", trained.pidpiper.config().drifts);

    // --- 4. Save the deployment (atomic + checksummed, see
    // `pid_piper::core::artifact`) and reload it with integrity checks.
    let path = std::env::temp_dir().join("pidpiper_example.model");
    let reloaded = match pid_piper::core::artifact::save_deployment(&path, &trained.pidpiper)
        .and_then(|()| pid_piper::core::artifact::load_deployment(&path))
    {
        Ok((pp, integrity)) => {
            println!(
                "4. deployment saved to {} ({} bytes) and reloaded {integrity:?} (thresholds match: {})",
                path.display(),
                std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                pp.config().thresholds == trained.thresholds,
            );
            pp
        }
        Err(err) => {
            // Refuse-and-retrain contract: with the fresh model still in
            // hand, a failed round trip only costs us the demonstration.
            println!("4. artifact round trip failed ({err}); continuing with the in-memory model");
            trained.pidpiper
        }
    };

    // --- 5. Smoke-test the reloaded defense on a fresh mission.
    let mut defense = reloaded;
    let result = MissionRunner::new(RunnerConfig::for_rv(rv).with_seed(42)).run(
        &MissionPlan::straight_line(40.0, 5.0),
        &mut defense,
        Vec::new(),
    );
    println!(
        "5. clean mission with the reloaded defense: {} ({} gratuitous activations)",
        result.outcome, result.recovery_activations
    );
}
